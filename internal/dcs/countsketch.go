// Package dcs implements the Dyadic Count Sketch (the study's Sec 5.2.3),
// the best-performing *turnstile* quantile sketch of Luo et al.'s
// comparison: log(u) dyadic levels over an integer universe [0, u), each
// summarized by a Count-Sketch (Charikar, Chen, Farach-Colton) that
// estimates how many stream items fall in each dyadic interval. Ranks
// are answered by summing the O(log u) dyadic intervals covering [0, x];
// quantiles by descending the dyadic tree.
//
// DCS is a linear sketch: it supports deletions and merges by counter
// addition. Its costs are what the study cites for excluding it — the
// universe must be known in advance and the footprint is an order of
// magnitude above KLL's (KLL "outperforms DCS in terms of memory usage,
// speed and accuracy", Sec 5.2.3) — claims the `related-turnstile`
// experiment verifies.
package dcs

import (
	"math/bits"

	"repro/internal/datagen"
)

// CountSketch is the frequency-estimation substrate: a depth×width
// counter matrix with pairwise-independent bucket and sign hashes per
// row; point queries return the median of the per-row unbiased
// estimates.
type CountSketch struct {
	depth  int
	width  int // power of two
	shift  uint
	rowA   []uint64 // odd multipliers for bucket hashing
	rowB   []uint64 // odd multipliers for sign hashing
	tables [][]int64
}

// NewCountSketch returns a depth×width Count-Sketch; width is rounded up
// to a power of two. Hash constants derive from seed.
func NewCountSketch(depth, width int, seed uint64) *CountSketch {
	if depth < 1 {
		depth = 1
	}
	if width < 2 {
		width = 2
	}
	w := 1
	for w < width {
		w <<= 1
	}
	cs := &CountSketch{
		depth:  depth,
		width:  w,
		shift:  uint(64 - bits.Len(uint(w-1))),
		rowA:   make([]uint64, depth),
		rowB:   make([]uint64, depth),
		tables: make([][]int64, depth),
	}
	s := seed
	for i := 0; i < depth; i++ {
		cs.rowA[i] = datagen.SplitMix64(&s) | 1
		cs.rowB[i] = datagen.SplitMix64(&s) | 1
		cs.tables[i] = make([]int64, w)
	}
	return cs
}

func (cs *CountSketch) bucket(row int, key uint64) int {
	return int((cs.rowA[row] * key) >> cs.shift)
}

func (cs *CountSketch) sign(row int, key uint64) int64 {
	if (cs.rowB[row]*key)>>63 == 1 {
		return -1
	}
	return 1
}

// Update adds delta to key's frequency.
func (cs *CountSketch) Update(key uint64, delta int64) {
	for i := 0; i < cs.depth; i++ {
		cs.tables[i][cs.bucket(i, key)] += cs.sign(i, key) * delta
	}
}

// Estimate returns the median-of-rows frequency estimate for key.
func (cs *CountSketch) Estimate(key uint64) int64 {
	ests := make([]int64, cs.depth)
	for i := 0; i < cs.depth; i++ {
		ests[i] = cs.sign(i, key) * cs.tables[i][cs.bucket(i, key)]
	}
	return medianInt64(ests)
}

// Merge adds other's counters; both sketches must share dimensions and
// seeds (enforced by the caller owning construction).
func (cs *CountSketch) Merge(other *CountSketch) bool {
	if other.depth != cs.depth || other.width != cs.width {
		return false
	}
	for i := range cs.rowA {
		if cs.rowA[i] != other.rowA[i] || cs.rowB[i] != other.rowB[i] {
			return false
		}
	}
	for i := range cs.tables {
		for j := range cs.tables[i] {
			cs.tables[i][j] += other.tables[i][j]
		}
	}
	return true
}

// Counters reports the number of int64 counters held.
func (cs *CountSketch) Counters() int { return cs.depth * cs.width }

// Reset zeroes all counters.
func (cs *CountSketch) Reset() {
	for i := range cs.tables {
		for j := range cs.tables[i] {
			cs.tables[i][j] = 0
		}
	}
}

func medianInt64(v []int64) int64 {
	// Insertion sort: depth is tiny (3–7).
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
