package dcs

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func TestCountSketchPointQueries(t *testing.T) {
	cs := NewCountSketch(5, 1024, 42)
	// Heavy hitters plus noise.
	truth := map[uint64]int64{1: 10000, 2: 5000, 3: 2500}
	for k, c := range truth {
		cs.Update(k, c)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 20000; i++ {
		cs.Update(uint64(100+rng.IntN(100000)), 1)
	}
	for k, c := range truth {
		est := cs.Estimate(k)
		if math.Abs(float64(est-c)) > 0.05*float64(c)+200 {
			t.Errorf("key %d: estimate %d, truth %d", k, est, c)
		}
	}
}

func TestCountSketchDeletions(t *testing.T) {
	cs := NewCountSketch(5, 256, 7)
	cs.Update(42, 1000)
	cs.Update(42, -400)
	if est := cs.Estimate(42); math.Abs(float64(est-600)) > 100 {
		t.Errorf("after deletion: %d, want ≈ 600", est)
	}
}

func TestCountSketchMergeLinearity(t *testing.T) {
	a := NewCountSketch(3, 128, 9)
	b := NewCountSketch(3, 128, 9) // same seed → mergeable
	a.Update(5, 100)
	b.Update(5, 50)
	b.Update(7, 30)
	if !a.Merge(b) {
		t.Fatal("merge refused")
	}
	if est := a.Estimate(5); math.Abs(float64(est-150)) > 30 {
		t.Errorf("merged estimate %d, want ≈ 150", est)
	}
	c := NewCountSketch(3, 128, 10) // different seed
	if a.Merge(c) {
		t.Error("different seeds must not merge")
	}
}

func TestMedianInt64(t *testing.T) {
	if m := medianInt64([]int64{3, 1, 2}); m != 2 {
		t.Errorf("median = %d", m)
	}
	if m := medianInt64([]int64{4, 1, 3, 2}); m != 2 {
		t.Errorf("even median = %d", m)
	}
	if m := medianInt64([]int64{5}); m != 5 {
		t.Errorf("single = %d", m)
	}
}

func TestDCSRankAndQuantileUniform(t *testing.T) {
	s, err := New(20, 5, 4096, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	n := 200000
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(rng.IntN(1 << 20))
		s.Insert(data[i])
	}
	sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		// Rank error of the estimate.
		pos := sort.Search(n, func(i int) bool { return data[i] > est })
		rankErr := math.Abs(q - float64(pos)/float64(n))
		if rankErr > 0.02 {
			t.Errorf("q=%v: rank error %v", q, rankErr)
		}
	}
}

func TestDCSTurnstile(t *testing.T) {
	s, err := New(16, 5, 2048, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Insert 0..9999, delete the evens: live data is the odds.
	for i := 0; i < 10000; i++ {
		s.Insert(uint64(i))
	}
	for i := 0; i < 10000; i += 2 {
		s.Delete(uint64(i))
	}
	if got := s.Count(); got != 5000 {
		t.Fatalf("live count %d, want 5000", got)
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(med)-5000) > 400 {
		t.Errorf("median after deletions = %d, want ≈ 5000", med)
	}
}

func TestDCSMerge(t *testing.T) {
	mk := func() *Sketch {
		s, err := New(16, 4, 1024, 17)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for i := 0; i < 20000; i++ {
		a.Insert(uint64(i % 30000))
		b.Insert(uint64((i + 30000) % 60000))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 40000 {
		t.Fatalf("merged count %d", a.Count())
	}
	other, _ := New(16, 4, 1024, 18)
	if err := a.Merge(other); err == nil {
		t.Error("seed mismatch should fail")
	}
}

func TestDCSMemoryLargerThanKLL(t *testing.T) {
	// The study's stated reason for exclusion: DCS needs much more
	// memory than KLL at comparable accuracy (Sec 5.2.3). KLL at the
	// study's config is ~4 KB.
	s, err := New(20, 5, 4096, 19)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MemoryBytes(); got < 100*1024 {
		t.Errorf("DCS footprint %d B — expected far above KLL's ~4 KB", got)
	}
}

func TestFloatSketchPareto(t *testing.T) {
	f, err := NewFloat(0.005, 1e-3, 16, 5, 4096, 23)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	n := 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.0)
		f.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.25, 0.5, 0.9} {
		est, err := f.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		pos := sort.SearchFloat64s(data, math.Nextafter(est, math.Inf(1)))
		rankErr := math.Abs(q - float64(pos)/float64(n))
		if rankErr > 0.03 {
			t.Errorf("q=%v: rank error %v", q, rankErr)
		}
	}
	if _, err := f.MarshalBinary(); err == nil {
		t.Error("DCS serialization should be unsupported")
	}
}

func TestFloatSketchEmpty(t *testing.T) {
	f, err := NewFloat(0.01, 1, 12, 3, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(0, 3, 64, 1); err == nil {
		t.Error("logU 0 should fail")
	}
	if _, err := New(63, 3, 64, 1); err == nil {
		t.Error("logU 63 should fail")
	}
	if _, err := NewFloat(2, 1, 12, 3, 64, 1); err == nil {
		t.Error("alpha 2 should fail")
	}
	if _, err := NewFloat(0.01, -1, 12, 3, 64, 1); err == nil {
		t.Error("negative minValue should fail")
	}
}

// Property: rank is non-decreasing in x.
func TestQuickRankMonotone(t *testing.T) {
	s, err := New(16, 4, 1024, 29)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 50000; i++ {
		s.Insert(uint64(rng.IntN(1 << 16)))
	}
	f := func(a, b uint16) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		// Sketch estimates are noisy; allow slack of 1.5% of n.
		return s.RankCount(x) <= s.RankCount(y)+750
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merge preserves the live count exactly (linearity).
func TestQuickMergeCount(t *testing.T) {
	f := func(na, nb uint8) bool {
		a, err := New(12, 3, 256, 31)
		if err != nil {
			return false
		}
		b, _ := New(12, 3, 256, 31)
		for i := 0; i < int(na); i++ {
			a.Insert(uint64(i))
		}
		for i := 0; i < int(nb); i++ {
			b.Insert(uint64(i * 3))
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		return a.Count() == uint64(int(na)+int(nb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
