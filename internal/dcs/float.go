package dcs

import (
	"fmt"
	"math"

	"repro/internal/ddsketch"
	"repro/internal/sketch"
)

// FloatSketch adapts DCS to float64 streams by quantizing positive
// values through a γ-logarithmic mapping (the DDSketch mapping) into the
// integer universe. It exists so DCS can run in the same harness as the
// study's five sketches; the quantization contributes relative error α
// on top of DCS's own rank error — and makes concrete the paper's point
// that DCS "requires prior knowledge of size" (here: the value range the
// universe must cover).
type FloatSketch struct {
	dcs     *Sketch
	mapping ddsketch.Mapping
	offset  int64 // mapping index of the smallest representable value
	zeroCnt int64
	minSeen float64
	maxSeen float64
	alpha   float64
}

var _ sketch.Sketch = (*FloatSketch)(nil)

// NewFloat returns a DCS over positive floats quantized at relative
// accuracy alpha. logU must be large enough that γ^(2^logU) covers the
// expected data range above minValue; out-of-range values clamp.
func NewFloat(alpha float64, minValue float64, logU, depth, width int, seed uint64) (*FloatSketch, error) {
	m, err := ddsketch.NewMapping(alpha)
	if err != nil {
		return nil, err
	}
	if !(minValue > 0) {
		return nil, fmt.Errorf("dcs: minValue must be positive, got %v", minValue)
	}
	d, err := New(logU, depth, width, seed)
	if err != nil {
		return nil, err
	}
	return &FloatSketch{
		dcs:     d,
		mapping: m,
		offset:  int64(m.Index(minValue)),
		minSeen: math.Inf(1),
		maxSeen: math.Inf(-1),
		alpha:   alpha,
	}, nil
}

// Name implements sketch.Sketch.
func (f *FloatSketch) Name() string { return "dcs" }

func (f *FloatSketch) key(x float64) uint64 {
	idx := int64(f.mapping.Index(x)) - f.offset
	if idx < 0 {
		idx = 0
	}
	return uint64(idx)
}

// Insert implements sketch.Sketch. Non-positive values and NaNs count as
// the minimum representable value.
func (f *FloatSketch) Insert(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x <= 0 {
		f.zeroCnt++ // tracked exactly, reported at the bottom of the order
		f.dcs.Insert(0)
	} else {
		f.dcs.Insert(f.key(x))
	}
	if x < f.minSeen {
		f.minSeen = x
	}
	if x > f.maxSeen {
		f.maxSeen = x
	}
}

// Delete removes one occurrence (DCS is turnstile).
func (f *FloatSketch) Delete(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x <= 0 {
		f.zeroCnt--
		f.dcs.Delete(0)
	} else {
		f.dcs.Delete(f.key(x))
	}
}

// Count implements sketch.Sketch.
func (f *FloatSketch) Count() uint64 { return f.dcs.Count() }

// Quantile implements sketch.Sketch.
func (f *FloatSketch) Quantile(q float64) (float64, error) {
	block, err := f.dcs.Quantile(q)
	if err != nil {
		return 0, err
	}
	v := f.mapping.Value(int(int64(block) + f.offset))
	if v < f.minSeen {
		v = f.minSeen
	}
	if v > f.maxSeen {
		v = f.maxSeen
	}
	return v, nil
}

// Rank implements sketch.Sketch.
func (f *FloatSketch) Rank(x float64) (float64, error) {
	if x <= 0 {
		if f.dcs.Count() == 0 {
			return 0, sketch.ErrEmpty
		}
		return 0, nil
	}
	return f.dcs.Rank(f.key(x))
}

// Merge implements sketch.Sketch.
func (f *FloatSketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*FloatSketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into dcs", sketch.ErrIncompatible, other.Name())
	}
	if math.Float64bits(o.alpha) != math.Float64bits(f.alpha) || o.offset != f.offset {
		return fmt.Errorf("%w: dcs quantizer mismatch", sketch.ErrIncompatible)
	}
	if err := f.dcs.Merge(o.dcs); err != nil {
		return err
	}
	f.zeroCnt += o.zeroCnt
	if o.minSeen < f.minSeen {
		f.minSeen = o.minSeen
	}
	if o.maxSeen > f.maxSeen {
		f.maxSeen = o.maxSeen
	}
	return nil
}

// MemoryBytes implements sketch.Sketch.
func (f *FloatSketch) MemoryBytes() int { return f.dcs.MemoryBytes() + 5*8 }

// Reset implements sketch.Sketch.
func (f *FloatSketch) Reset() {
	f.dcs.Reset()
	f.zeroCnt = 0
	f.minSeen = math.Inf(1)
	f.maxSeen = math.Inf(-1)
}

// MarshalBinary implements encoding.BinaryMarshaler. DCS state is large
// and rebuildable; serialization is intentionally unsupported, matching
// its exclusion from the shipping workflows.
func (f *FloatSketch) MarshalBinary() ([]byte, error) {
	return nil, fmt.Errorf("dcs: serialization not supported")
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *FloatSketch) UnmarshalBinary([]byte) error {
	return fmt.Errorf("dcs: serialization not supported")
}
