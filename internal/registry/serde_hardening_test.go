package registry

import (
	"bytes"
	"testing"

	"repro/internal/sketch"
)

// prefill puts a decode-target receiver into a distinctive non-empty
// state (different fill than the blob under decode, so silent partial
// decoding would be visible).
func prefill(s sketch.Sketch) {
	for i := 0; i < 64; i++ {
		s.Insert(float64(i%7) + 0.5)
	}
}

// mustMarshal serializes or fails the test.
func mustMarshal(t *testing.T, name string, s sketch.Sketch) []byte {
	t.Helper()
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: MarshalBinary: %v", name, err)
	}
	return blob
}

// tryDecode runs UnmarshalBinary converting any panic into a test
// failure, and reports whether the decode returned an error.
func tryDecode(t *testing.T, name, kind string, s sketch.Sketch, data []byte) (failed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decoder panicked on %s input: %v", name, kind, r)
		}
	}()
	return s.UnmarshalBinary(data) != nil
}

// stride thins a sweep over n positions to at most limit probes.
func stride(n, limit int) int {
	s := n/limit + 1
	if s < 1 {
		s = 1
	}
	return s
}

// TestHardenedDecoderContract is the registry-wide corruption
// containment contract, the decoder-side half of the checkpoint
// recovery guarantee: for every sketch, truncated input must produce an
// error (never a panic), and a decode that errors must leave the
// receiver observably unchanged — its serialized state, count and
// median are the same before and after. Bit-flipped input additionally
// must never panic, and must obey the same unchanged-on-error rule
// (a flip the format cannot detect may decode "successfully"; the
// checkpoint envelope's CRC32-C exists precisely to catch those).
func TestHardenedDecoderContract(t *testing.T) {
	for _, e := range Entries() {
		if !e.Serde {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			src := e.New()
			fill(src, 500)
			blob := mustMarshal(t, e.Name, src)

			check := func(kind string, data []byte) {
				recv := e.New()
				prefill(recv)
				before := mustMarshal(t, e.Name, recv)
				cntBefore := recv.Count()
				if !tryDecode(t, e.Name, kind, recv, data) {
					if kind == "truncated" {
						t.Fatalf("%s: decoder accepted %s input (%d of %d bytes)", e.Name, kind, len(data), len(blob))
					}
					return // undetectable bit flip decoded; envelope CRC covers this
				}
				if recv.Count() != cntBefore {
					t.Fatalf("%s: failed decode of %s input moved Count %d → %d", e.Name, kind, cntBefore, recv.Count())
				}
				after := mustMarshal(t, e.Name, recv)
				if !bytes.Equal(before, after) {
					t.Fatalf("%s: failed decode of %s input mutated the receiver", e.Name, kind)
				}
			}

			for n := 0; n < len(blob); n += stride(len(blob), 512) {
				check("truncated", blob[:n])
			}
			for i := 0; i < len(blob); i += stride(len(blob), 256) {
				flipped := make([]byte, len(blob))
				copy(flipped, blob)
				flipped[i] ^= 0x10
				check("bit-flipped", flipped)
			}
		})
	}
}

// TestResumeEquivalenceContract pins the exact-resume property the
// stream checkpoint relies on: decode a sketch's serialized state into
// a fresh instance, continue inserting the identical suffix into both,
// and the final serialized states must be byte-identical — including
// the randomized sketches, whose compaction RNG state round-trips
// through serde (SerdeVersion 2).
func TestResumeEquivalenceContract(t *testing.T) {
	for _, e := range Entries() {
		if !e.Serde {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			orig := e.New()
			fill(orig, 1000)
			blob := mustMarshal(t, e.Name, orig)

			resumed := e.New()
			if err := resumed.UnmarshalBinary(blob); err != nil {
				t.Fatalf("%s: decode: %v", e.Name, err)
			}
			// Same suffix into both; any RNG or buffer-state divergence
			// shows up in the serialized bytes.
			fill(orig, 3000)
			fill(resumed, 3000)
			a := mustMarshal(t, e.Name, orig)
			b := mustMarshal(t, e.Name, resumed)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: resumed sketch diverged from the original after identical suffix", e.Name)
			}
		})
	}
}
