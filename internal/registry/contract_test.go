package registry

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/sketch"
)

// fill inserts a small deterministic positive stream (SplitMix64-derived
// uniforms in (0, 1000)) so contract checks run against non-empty state.
func fill(s sketch.Sketch, n int) {
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		u := float64(z>>11) / (1 << 53)
		s.Insert(1e-3 + u*1000)
	}
}

func TestRegistryNamesUniqueAndFresh(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Entries() {
		if seen[e.Name] {
			t.Errorf("duplicate registry name %q", e.Name)
		}
		seen[e.Name] = true
		a, b := e.New(), e.New()
		if a.Count() != 0 || b.Count() != 0 {
			t.Errorf("%s: builder returned non-empty sketch", e.Name)
		}
		fill(a, 100)
		if a.Count() == 0 {
			t.Errorf("%s: Count stayed 0 after 100 inserts", e.Name)
		}
		if b.Count() != 0 {
			t.Errorf("%s: builders share state: filling one changed the other", e.Name)
		}
	}
}

// TestQuantileNaNContract pins the shared API contract: a NaN quantile
// argument is invalid for every sketch, empty or not, and must surface
// as ErrInvalidQuantile rather than a garbage estimate.
func TestQuantileNaNContract(t *testing.T) {
	for _, e := range Entries() {
		s := e.New()
		fill(s, 200)
		if _, err := s.Quantile(math.NaN()); !errors.Is(err, sketch.ErrInvalidQuantile) {
			t.Errorf("%s: Quantile(NaN) = %v, want ErrInvalidQuantile", e.Name, err)
		}
		if _, err := s.Quantile(-0.5); !errors.Is(err, sketch.ErrInvalidQuantile) {
			t.Errorf("%s: Quantile(-0.5) = %v, want ErrInvalidQuantile", e.Name, err)
		}
		if _, err := s.Quantile(1.5); !errors.Is(err, sketch.ErrInvalidQuantile) {
			t.Errorf("%s: Quantile(1.5) = %v, want ErrInvalidQuantile", e.Name, err)
		}
	}
}

// TestInsertNaNContract pins the documented ingest policy: NaN is not a
// value, so Insert(NaN) is ignored — the count must not move and
// subsequent queries must not be poisoned.
func TestInsertNaNContract(t *testing.T) {
	for _, e := range Entries() {
		s := e.New()
		fill(s, 200)
		before := s.Count()
		q50Before, err := s.Quantile(0.5)
		if err != nil {
			t.Fatalf("%s: Quantile(0.5): %v", e.Name, err)
		}
		s.Insert(math.NaN())
		if got := s.Count(); got != before {
			t.Errorf("%s: Insert(NaN) moved count %d -> %d", e.Name, before, got)
		}
		q50After, err := s.Quantile(0.5)
		if err != nil {
			t.Errorf("%s: Quantile(0.5) after Insert(NaN): %v", e.Name, err)
			continue
		}
		if math.IsNaN(q50After) || math.Float64bits(q50After) != math.Float64bits(q50Before) {
			t.Errorf("%s: Insert(NaN) changed Quantile(0.5) %v -> %v", e.Name, q50Before, q50After)
		}
	}
}

// TestSerdeRoundTripContract checks that marshal → unmarshal → marshal is
// lossless and stable for a populated sketch of every registered kind.
func TestSerdeRoundTripContract(t *testing.T) {
	for _, e := range Entries() {
		if !e.Serde {
			continue
		}
		s := e.New()
		fill(s, 500)
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", e.Name, err)
		}
		restored := e.New()
		if err := restored.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%s: UnmarshalBinary: %v", e.Name, err)
		}
		if restored.Count() != s.Count() {
			t.Errorf("%s: round trip changed count %d -> %d", e.Name, s.Count(), restored.Count())
		}
		blob2, err := restored.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-MarshalBinary: %v", e.Name, err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Errorf("%s: encoding is not stable across a round trip", e.Name)
		}
		for _, q := range []float64{0.01, 0.5, 0.99} {
			want, err1 := s.Quantile(q)
			got, err2 := restored.Quantile(q)
			if err1 != nil || err2 != nil {
				t.Errorf("%s: Quantile(%v) errs: %v, %v", e.Name, q, err1, err2)
				continue
			}
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Errorf("%s: round trip changed Quantile(%v) %v -> %v", e.Name, q, want, got)
			}
		}
	}
}
