// Package registry enumerates every production sketch implementation in
// this repository behind one uniform list, so cross-cutting test layers —
// shared contract tests, metamorphic property tests under the invariants
// build tag, and the native fuzz targets — cover each sketch without
// maintaining per-package copies of the same harness.
//
// Each entry pairs a stable name with a sketch.Builder producing a fresh,
// identically configured instance. Configurations mirror the defaults the
// study's harness uses (cmd/sketchtool, internal/harness), scaled where
// needed so property tests stay fast.
//
// kllpm is deliberately absent: its delete-capable Merge takes the
// concrete *kllpm.Sketch and it has no binary encoding, so it does not
// implement sketch.Sketch.
package registry

import (
	"fmt"

	"repro/internal/dcs"
	"repro/internal/ddsketch"
	"repro/internal/gk"
	"repro/internal/hdr"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/mrl"
	"repro/internal/req"
	"repro/internal/sketch"
	"repro/internal/tdigest"
	"repro/internal/uddsketch"
)

// Entry is one registered sketch implementation.
type Entry struct {
	// Name uniquely identifies the configuration; it extends the
	// sketch's own Name() when one type is registered twice (e.g.
	// "ddsketch-collapsing").
	Name string

	// New builds a fresh, empty sketch with this entry's configuration.
	New sketch.Builder

	// Serde reports whether MarshalBinary/UnmarshalBinary are
	// functional. DCS stubs them out (its Count-Sketch tables make
	// state transfer impractical at the paper's configurations), so
	// serde-focused layers skip entries with Serde == false.
	Serde bool
}

// must unwraps constructors that validate their parameters; the registry
// only passes fixed known-good configurations, so it panics on error.
func must[T sketch.Sketch](s T, err error) sketch.Sketch {
	if err != nil {
		panic(fmt.Sprintf("registry: constructor rejected fixed config: %v", err))
	}
	return s
}

// Entries returns the full registry. The slice is freshly allocated on
// every call, and builders never share state, so callers may mutate
// freely (the fuzz targets run entries concurrently).
func Entries() []Entry {
	return []Entry{
		{"kll", func() sketch.Sketch { return kll.New(kll.DefaultK) }, true},
		{"req", func() sketch.Sketch { return req.New(12, true) }, true},
		{"req-lra", func() sketch.Sketch { return req.New(12, false) }, true},
		{"gk", func() sketch.Sketch { return gk.New(0.001) }, true},
		{"ddsketch", func() sketch.Sketch { return ddsketch.New(0.01) }, true},
		{"ddsketch-collapsing", func() sketch.Sketch { return ddsketch.NewCollapsing(0.01, 1024) }, true},
		{"ddsketch-paginated", func() sketch.Sketch { return ddsketch.NewPaginated(0.01) }, true},
		{"uddsketch", func() sketch.Sketch { return uddsketch.New(0.01, 1024) }, true},
		{"uddsketch-array", func() sketch.Sketch { return must(uddsketch.NewArray(0.01, 1024)) }, true},
		{"moments", func() sketch.Sketch { return moments.New(12) }, true},
		{"moments-log", func() sketch.Sketch { return moments.NewWithTransform(12, moments.TransformLog) }, true},
		{"moments-full", func() sketch.Sketch { return moments.NewFull(12) }, true},
		{"tdigest", func() sketch.Sketch { return tdigest.New(tdigest.DefaultCompression) }, true},
		{"hdr", func() sketch.Sketch { return must(hdr.New(1, 100_000_000, 3)) }, true},
		{"mrl", func() sketch.Sketch { return mrl.New(mrl.DefaultBuffers, mrl.DefaultK) }, true},
		{"dcs", func() sketch.Sketch { return must(dcs.NewFloat(0.001, 1, 16, 4, 512, 0xd5c0ffee)) }, false},
	}
}
