package registry

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSerdeRoundTrip feeds arbitrary bytes to every registered decoder.
// A decoder may reject the input (any error is fine), but if it accepts,
// the resulting sketch must be fully functional: queryable without
// panicking, re-encodable, and stable under a second round trip. Under
// `-tags invariants` this additionally proves each decoder's validation
// is a superset of the package's structural invariants — an accepted
// payload can never resurrect an impossible state.
func FuzzSerdeRoundTrip(f *testing.F) {
	for _, e := range Entries() {
		if !e.Serde {
			continue
		}
		s := e.New()
		fill(s, 300)
		blob, err := s.MarshalBinary()
		if err != nil {
			f.Fatalf("%s: MarshalBinary: %v", e.Name, err)
		}
		f.Add(blob)
		empty, err := e.New().MarshalBinary()
		if err != nil {
			f.Fatalf("%s: MarshalBinary (empty): %v", e.Name, err)
		}
		f.Add(empty)
		if len(blob) > 4 {
			f.Add(blob[:len(blob)/2]) // truncation must be rejected cleanly
			flipped := bytes.Clone(blob)
			flipped[len(flipped)-3] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, e := range Entries() {
			if !e.Serde {
				continue
			}
			s := e.New()
			if err := s.UnmarshalBinary(data); err != nil {
				continue
			}
			// Accepted: the state must behave like a real sketch.
			if c := s.Count(); c > 0 {
				if _, err := s.Quantile(0.5); err != nil {
					t.Errorf("%s: accepted payload but Quantile(0.5) failed: %v", e.Name, err)
				}
				if _, err := s.Rank(1); err != nil {
					t.Errorf("%s: accepted payload but Rank(1) failed: %v", e.Name, err)
				}
			}
			blob, err := s.MarshalBinary()
			if err != nil {
				t.Errorf("%s: accepted payload but re-encode failed: %v", e.Name, err)
				continue
			}
			restored := e.New()
			if err := restored.UnmarshalBinary(blob); err != nil {
				t.Errorf("%s: own encoding rejected on second decode: %v", e.Name, err)
				continue
			}
			if restored.Count() != s.Count() {
				t.Errorf("%s: round trip changed count %d -> %d", e.Name, s.Count(), restored.Count())
			}
			blob2, err := restored.MarshalBinary()
			if err != nil {
				t.Errorf("%s: second re-encode failed: %v", e.Name, err)
				continue
			}
			if !bytes.Equal(blob, blob2) {
				t.Errorf("%s: encoding unstable across round trips", e.Name)
			}
		}
	})
}

// floatsFromBytes decodes data as consecutive little-endian float64s,
// dropping NaN/±Inf (the documented non-value inputs) so the stream is
// something every sketch accepts.
func floatsFromBytes(data []byte) []float64 {
	vals := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		vals = append(vals, v)
	}
	return vals
}

// FuzzMergeCountConservation splits an arbitrary finite float stream
// between two identically configured sketches and checks the registry's
// universal merge law: the merged count equals the sum of the parts,
// whatever each sketch's ingest policy (clamping, zero-bucketing,
// dropping non-representable values) decided to count. Under
// `-tags invariants` the per-package assertCount hooks fire on the same
// merge paths, so a conservation bug panics with the broken internals.
func FuzzMergeCountConservation(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(mk(1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(mk(0, -1, 1e-300, 1e300, 0.5, -0.5))
	f.Add(mk(math.NaN(), math.Inf(1), math.Inf(-1), 42))
	f.Add(mk())
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := floatsFromBytes(data)
		if len(vals) > 4096 {
			vals = vals[:4096]
		}
		left, right := vals[:len(vals)/2], vals[len(vals)/2:]
		for _, e := range Entries() {
			a, b := e.New(), e.New()
			for _, v := range left {
				a.Insert(v)
			}
			for _, v := range right {
				b.Insert(v)
			}
			ca, cb := a.Count(), b.Count()
			if err := a.Merge(b); err != nil {
				t.Errorf("%s: merge of identically configured sketches failed: %v", e.Name, err)
				continue
			}
			if got := a.Count(); got != ca+cb {
				t.Errorf("%s: merge lost mass: %d + %d -> %d", e.Name, ca, cb, got)
			}
			if got := b.Count(); got != cb {
				t.Errorf("%s: merge mutated its argument: %d -> %d", e.Name, cb, got)
			}
		}
	})
}

// TestGenerateFuzzCorpus regenerates the checked-in seed corpora under
// testdata/fuzz from freshly serialized sketches. It is a maintenance
// hook, skipped unless REGEN_FUZZ_CORPUS is set:
//
//	REGEN_FUZZ_CORPUS=1 go test ./internal/registry -run TestGenerateFuzzCorpus
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	write := func(fuzzName, seedName string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range Entries() {
		if !e.Serde {
			continue
		}
		s := e.New()
		fill(s, 300)
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", e.Name, err)
		}
		write("FuzzSerdeRoundTrip", "seed-"+e.Name, blob)
		empty, err := e.New().MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary (empty): %v", e.Name, err)
		}
		write("FuzzSerdeRoundTrip", "seed-"+e.Name+"-empty", empty)
	}
	stream := make([]byte, 0, 8*64)
	state := uint64(0x51ee7)
	for i := 0; i < 64; i++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		v := float64(z>>11) / (1 << 53) * 1e4
		stream = binary.LittleEndian.AppendUint64(stream, math.Float64bits(v))
	}
	write("FuzzMergeCountConservation", "seed-uniform", stream)
	edges := make([]byte, 0, 8*8)
	for _, v := range []float64{0, -1, 1e-308, 1e308, 0.5, -0.5, 1, 123456789} {
		edges = binary.LittleEndian.AppendUint64(edges, math.Float64bits(v))
	}
	write("FuzzMergeCountConservation", "seed-edges", edges)
}
