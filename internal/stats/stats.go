// Package stats provides the exact ground-truth computations and error
// metrics the study evaluates sketches against: exact quantiles and ranks
// over a materialized window, relative and rank error (paper Sec 2.2),
// excess kurtosis (Sec 2.3), and mean/95%-confidence-interval aggregation
// used for every reported figure.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by computations over empty data.
var ErrEmpty = errors.New("stats: empty data")

// ExactQuantiles answers exact q-quantile queries over one data set by
// sorting a private copy once. It is the oracle the harness compares every
// sketch estimate against.
type ExactQuantiles struct {
	sorted []float64
}

// NewExactQuantiles copies and sorts data. It panics on empty input since
// the harness always materializes non-empty windows.
func NewExactQuantiles(data []float64) *ExactQuantiles {
	if len(data) == 0 {
		panic("stats: NewExactQuantiles on empty data")
	}
	s := make([]float64, len(data))
	copy(s, data)
	sort.Float64s(s)
	return &ExactQuantiles{sorted: s}
}

// FromSorted wraps an already-sorted slice without copying. The caller
// must not mutate data afterwards.
func FromSorted(data []float64) *ExactQuantiles {
	if len(data) == 0 {
		panic("stats: FromSorted on empty data")
	}
	return &ExactQuantiles{sorted: data}
}

// N returns the data size.
func (e *ExactQuantiles) N() int { return len(e.sorted) }

// Quantile returns the exact q-quantile: the element of rank ceil(qN) in
// the sorted data (the paper's Sec 2.1 definition), for q in (0, 1].
func (e *ExactQuantiles) Quantile(q float64) float64 {
	n := len(e.sorted)
	idx := int(math.Ceil(q * float64(n)))
	if idx < 1 {
		idx = 1
	}
	if idx > n {
		idx = n
	}
	return e.sorted[idx-1]
}

// Rank returns the number of elements less than or equal to x.
func (e *ExactQuantiles) Rank(x float64) int {
	return sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
}

// NormalizedRank returns Rank(x)/N, i.e. Quantile⁻¹(x) in the paper's
// notation.
func (e *ExactQuantiles) NormalizedRank(x float64) float64 {
	return float64(e.Rank(x)) / float64(len(e.sorted))
}

// WeightedQuantiles answers exact quantile queries over a weighted
// multiset — the ground truth for exponentially time-decayed windows,
// where each pane's values carry weight exp(-λ·age). It generalizes
// ExactQuantiles: with all weights 1 the two agree on every q.
type WeightedQuantiles struct {
	sorted []float64
	cum    []float64 // cumulative weight through sorted[i]
}

// NewWeightedQuantiles copies values (with their parallel weights),
// sorts by value and accumulates the weights. Weights must be positive
// and finite; it panics on empty or mismatched input, mirroring
// NewExactQuantiles.
func NewWeightedQuantiles(values, weights []float64) *WeightedQuantiles {
	if len(values) == 0 || len(values) != len(weights) {
		panic("stats: NewWeightedQuantiles needs matching non-empty values and weights")
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	w := &WeightedQuantiles{
		sorted: make([]float64, len(values)),
		cum:    make([]float64, len(values)),
	}
	var total float64
	for i, j := range idx {
		w.sorted[i] = values[j]
		total += weights[j]
		w.cum[i] = total
	}
	return w
}

// Quantile returns the weighted q-quantile: the smallest element whose
// cumulative weight reaches q·totalWeight — the weighted analogue of
// the rank-ceil(qN) definition of ExactQuantiles.Quantile.
func (w *WeightedQuantiles) Quantile(q float64) float64 {
	target := q * w.cum[len(w.cum)-1]
	i := sort.SearchFloat64s(w.cum, target)
	if i >= len(w.sorted) {
		i = len(w.sorted) - 1
	}
	return w.sorted[i]
}

// Min returns the smallest element.
func (e *ExactQuantiles) Min() float64 { return e.sorted[0] }

// Max returns the largest element.
func (e *ExactQuantiles) Max() float64 { return e.sorted[len(e.sorted)-1] }

// RelativeError computes |x̂−x|/|x|, the error measure used throughout the
// study (Sec 2.2). When the true value is exactly zero it falls back to
// absolute error so the metric stays finite.
func RelativeError(truth, estimate float64) float64 {
	if truth == 0 {
		return math.Abs(estimate)
	}
	return math.Abs(truth-estimate) / math.Abs(truth)
}

// RankError computes |q − Rank(x̂)/N| for an estimate x̂ of the q-quantile
// (Sec 2.2), using the exact oracle for Rank.
func RankError(e *ExactQuantiles, q, estimate float64) float64 {
	return math.Abs(q - e.NormalizedRank(estimate))
}

// Moments of a sample, accumulated in one pass using Welford-style central
// moment updates so kurtosis is numerically stable on long streams.
type Moments struct {
	n             int64
	mean          float64
	m2, m3, m4    float64
	min, max, sum float64
	initialized   bool
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	if !m.initialized {
		m.min, m.max = x, x
		m.initialized = true
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.sum += x
	n1 := float64(m.n)
	m.n++
	n := float64(m.n)
	delta := x - m.mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.mean += deltaN
	m.m4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.m2 - 4*deltaN*m.m3
	m.m3 += term1*deltaN*(n-2) - 3*deltaN*m.m2
	m.m2 += term1
}

// AddAll folds every element of xs.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the sample mean.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the population variance.
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Skewness returns the sample skewness.
func (m *Moments) Skewness() float64 {
	if m.m2 == 0 {
		return 0
	}
	return math.Sqrt(float64(m.n)) * m.m3 / math.Pow(m.m2, 1.5)
}

// Kurtosis returns the excess kurtosis (normal distribution → 0), the
// convention the paper adopts in Sec 2.3.
func (m *Moments) Kurtosis() float64 {
	if m.m2 == 0 {
		return 0
	}
	return float64(m.n)*m.m4/(m.m2*m.m2) - 3
}

// Min returns the smallest observation (0 if none).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 if none).
func (m *Moments) Max() float64 { return m.max }

// Kurtosis computes the excess kurtosis of xs in one call.
func Kurtosis(xs []float64) float64 {
	var m Moments
	m.AddAll(xs)
	return m.Kurtosis()
}

// Summary aggregates repeated scalar measurements (one per experiment run)
// into the mean and 95% confidence interval the paper's error bars report.
type Summary struct {
	values []float64
}

// Observe records one measurement.
func (s *Summary) Observe(v float64) { s.values = append(s.values, v) }

// N returns the number of recorded measurements.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the sample mean, or 0 when empty.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1) / float64(n))
}

// CI95 returns the half-width of the 95% confidence interval around the
// mean using the Student-t critical value for the observed sample size.
func (s *Summary) CI95() float64 {
	return tCritical95(len(s.values)-1) * s.StdErr()
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Values for small df are tabulated (the harness runs
// 10 repetitions, df=9 → 2.262); large df fall back to the normal 1.96.
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}
