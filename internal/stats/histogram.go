package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin-count equi-width histogram used by the harness
// to render the data-set shape panels of Fig 4 as text, and by tests to
// validate that the synthetic stand-ins for the NYT and Power data sets
// have the documented shapes (repetition mass, bimodality, tail weight).
type Histogram struct {
	Min, Max float64
	Counts   []int64
	total    int64
	width    float64
}

// NewHistogram builds a histogram of data with bins equi-width bins over
// [lo, hi]. Values outside the range clamp to the first/last bin.
func NewHistogram(data []float64, lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int64, bins), width: (hi - lo) / float64(bins)}
	for _, x := range data {
		h.Add(x)
	}
	return h
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Min) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 { return h.total }

// Density returns the fraction of values in bin i.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// PeakBins returns the indices of local maxima whose count is at least
// minFrac of the total; tests use it to assert bimodality of the Power
// stand-in.
func (h *Histogram) PeakBins(minFrac float64) []int {
	var peaks []int
	for i := range h.Counts {
		c := h.Counts[i]
		if float64(c) < minFrac*float64(h.total) {
			continue
		}
		leftOK := i == 0 || h.Counts[i-1] <= c
		rightOK := i == len(h.Counts)-1 || h.Counts[i+1] < c
		if leftOK && rightOK {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

// Render draws the histogram as rows of '#' bars, one row per bin, scaled
// so the largest bin spans width characters. The harness prints this for
// experiment fig4.
func (h *Histogram) Render(width int) string {
	var b strings.Builder
	var maxC int64 = 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*h.width
		bar := int(math.Round(float64(c) / float64(maxC) * float64(width)))
		fmt.Fprintf(&b, "%12.4g | %-*s %d\n", lo, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// TopValueMass returns the combined fraction of the data mass held by the
// k most frequent *distinct* values. The paper uses this statistic to
// characterize the NYT (top-10 ≈ 31.2%) and Power (top-10 ≈ 4.5%) data
// sets; the synthetic stand-ins are validated against it.
func TopValueMass(data []float64, k int) float64 {
	if len(data) == 0 || k <= 0 {
		return 0
	}
	freq := make(map[float64]int, 1024)
	for _, x := range data {
		freq[x]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	// Partial selection of the k largest counts.
	topSum := 0
	for i := 0; i < k && len(counts) > 0; i++ {
		best, bi := -1, -1
		for j, c := range counts {
			if c > best {
				best, bi = c, j
			}
		}
		topSum += best
		counts[bi] = counts[len(counts)-1]
		counts = counts[:len(counts)-1]
	}
	return float64(topSum) / float64(len(data))
}
