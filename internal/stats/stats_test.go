package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestExactQuantilesPaperExample(t *testing.T) {
	// Table 1 of the paper.
	data := []float64{3, 8, 11, 16, 30, 51, 55, 61, 75, 100}
	e := NewExactQuantiles(data)
	for i, q := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		if got := e.Quantile(q); got != data[i] {
			t.Errorf("q=%v: got %v, want %v", q, got, data[i])
		}
	}
	// Rank(x) is the count of elements ≤ x.
	if got := e.Rank(30); got != 5 {
		t.Errorf("Rank(30) = %d, want 5", got)
	}
	if got := e.Rank(2); got != 0 {
		t.Errorf("Rank(2) = %d, want 0", got)
	}
	if got := e.Rank(100); got != 10 {
		t.Errorf("Rank(100) = %d, want 10", got)
	}
	if got := e.NormalizedRank(18); got != 0.4 {
		t.Errorf("NormalizedRank(18) = %v, want 0.4 (rank of x̂=18 in the Sec 2.2 example)", got)
	}
	if e.Min() != 3 || e.Max() != 100 || e.N() != 10 {
		t.Error("min/max/n wrong")
	}
}

// The paper's Sec 2.2 worked example: estimating the 0.9-quantile of
// Table 1 as 18 gives rank error 0.1 and relative error 0.4.
func TestPaperErrorExample(t *testing.T) {
	data := []float64{3, 8, 11, 16, 30, 51, 55, 61, 75, 100}
	e := NewExactQuantiles(data)
	truth := e.Quantile(0.9) // 75? No: rank ceil(0.9*10)=9 → 75.
	_ = truth
	// The paper's example uses the data set where the true 0.9-quantile is
	// 30 (their Table 1 has different values); replicate the arithmetic
	// directly instead:
	if re := RelativeError(30, 18); math.Abs(re-0.4) > 1e-12 {
		t.Errorf("relative error = %v, want 0.4", re)
	}
	if rankErr := RankError(e, 0.9, 18); math.Abs(rankErr-(0.9-0.4)) > 1e-12 {
		t.Errorf("rank error = %v, want 0.5 (18 has rank 4 in this data)", rankErr)
	}
}

func TestRelativeErrorZeroTruth(t *testing.T) {
	if got := RelativeError(0, 3); got != 3 {
		t.Errorf("RelativeError(0, 3) = %v, want absolute fallback 3", got)
	}
	if got := RelativeError(10, 10); got != 0 {
		t.Errorf("exact estimate should give 0, got %v", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	e := NewExactQuantiles([]float64{5})
	if e.Quantile(0.0001) != 5 || e.Quantile(1) != 5 {
		t.Error("single-element quantiles wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty data should panic")
		}
	}()
	NewExactQuantiles(nil)
}

func TestFromSorted(t *testing.T) {
	e := FromSorted([]float64{1, 2, 3})
	if e.Quantile(0.5) != 2 {
		t.Error("FromSorted median wrong")
	}
}

func TestMomentsAgainstClosedForm(t *testing.T) {
	// U(0,1): mean 0.5, var 1/12, skew 0, excess kurtosis −1.2.
	rng := rand.New(rand.NewPCG(1, 2))
	var m Moments
	for i := 0; i < 1000000; i++ {
		m.Add(rng.Float64())
	}
	if math.Abs(m.Mean()-0.5) > 0.002 {
		t.Errorf("mean = %v", m.Mean())
	}
	if math.Abs(m.Variance()-1.0/12) > 0.001 {
		t.Errorf("variance = %v", m.Variance())
	}
	if math.Abs(m.Skewness()) > 0.02 {
		t.Errorf("skewness = %v", m.Skewness())
	}
	if math.Abs(m.Kurtosis()+1.2) > 0.02 {
		t.Errorf("kurtosis = %v, want −1.2", m.Kurtosis())
	}
}

func TestKurtosisNormalIsZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	data := make([]float64, 1000000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	if k := Kurtosis(data); math.Abs(k) > 0.05 {
		t.Errorf("normal kurtosis = %v, want ≈ 0 (excess convention)", k)
	}
}

func TestKurtosisExponential(t *testing.T) {
	// Exponential: excess kurtosis 6.
	rng := rand.New(rand.NewPCG(5, 6))
	data := make([]float64, 2000000)
	for i := range data {
		data[i] = rng.ExpFloat64()
	}
	if k := Kurtosis(data); math.Abs(k-6) > 0.3 {
		t.Errorf("exponential kurtosis = %v, want ≈ 6", k)
	}
}

func TestMomentsMinMax(t *testing.T) {
	var m Moments
	m.AddAll([]float64{3, -1, 7, 2})
	if m.Min() != -1 || m.Max() != 7 || m.N() != 4 {
		t.Error("min/max/n wrong")
	}
}

func TestSummaryCI(t *testing.T) {
	var s Summary
	for _, v := range []float64{10, 12, 8, 11, 9, 10, 12, 8, 10, 10} {
		s.Observe(v)
	}
	if s.N() != 10 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-10) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	// df=9 → t = 2.262; CI = 2.262 · s/√10.
	ci := s.CI95()
	if ci <= 0 || ci > 2 {
		t.Errorf("CI95 = %v, implausible", ci)
	}
	var empty Summary
	if empty.Mean() != 0 || empty.CI95() != 0 {
		t.Error("empty summary should be zero")
	}
	var single Summary
	single.Observe(5)
	if single.CI95() != 0 {
		t.Error("single observation has no CI")
	}
}

func TestTCritical(t *testing.T) {
	if got := tCritical95(9); got != 2.262 {
		t.Errorf("t(9) = %v", got)
	}
	if got := tCritical95(1000); got != 1.96 {
		t.Errorf("t(1000) = %v", got)
	}
	if got := tCritical95(0); got != 0 {
		t.Errorf("t(0) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0, 10, 5)
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	for i := 0; i < 5; i++ {
		if h.Counts[i] != 2 {
			t.Errorf("bin %d = %d, want 2", i, h.Counts[i])
		}
		if h.Density(i) != 0.2 {
			t.Errorf("density %d = %v", i, h.Density(i))
		}
	}
	// Clamping.
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] != 3 || h.Counts[4] != 3 {
		t.Error("out-of-range values should clamp to edge bins")
	}
	if h.Render(10) == "" {
		t.Error("render empty")
	}
}

func TestHistogramPeaks(t *testing.T) {
	// Bimodal: peaks at bins 1 and 3.
	h := &Histogram{Min: 0, Max: 5, Counts: []int64{1, 10, 2, 8, 1}, width: 1}
	for _, c := range h.Counts {
		h.total += c
	}
	peaks := h.PeakBins(0.1)
	if len(peaks) != 2 || peaks[0] != 1 || peaks[1] != 3 {
		t.Errorf("peaks = %v, want [1 3]", peaks)
	}
}

func TestTopValueMass(t *testing.T) {
	data := []float64{1, 1, 1, 2, 2, 3, 4, 5, 6, 7}
	if got := TopValueMass(data, 2); got != 0.5 {
		t.Errorf("top-2 mass = %v, want 0.5", got)
	}
	if got := TopValueMass(nil, 3); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := TopValueMass(data, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("top-all mass = %v, want 1", got)
	}
}

// Property: exact quantile matches a reference implementation on random
// data.
func TestQuickQuantileMatchesSort(t *testing.T) {
	f := func(vals []float32, qFrac uint16) bool {
		if len(vals) == 0 {
			return true
		}
		data := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(float64(v)) {
				return true
			}
			data[i] = float64(v)
		}
		e := NewExactQuantiles(data)
		sort.Float64s(data)
		q := (float64(qFrac) + 1) / 65537
		idx := int(math.Ceil(q * float64(len(data))))
		if idx < 1 {
			idx = 1
		}
		return e.Quantile(q) == data[idx-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: streaming Moments matches two-pass computation.
func TestQuickMomentsMatchTwoPass(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) < 2 {
			return true
		}
		var m Moments
		var sum float64
		data := make([]float64, len(vals))
		for i, v := range vals {
			x := float64(v) / 1e3
			data[i] = x
			m.Add(x)
			sum += x
		}
		mean := sum / float64(len(data))
		var v2 float64
		for _, x := range data {
			v2 += (x - mean) * (x - mean)
		}
		v2 /= float64(len(data))
		return math.Abs(m.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(m.Variance()-v2) < 1e-6*(1+v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWeightedQuantilesUnitWeights: with every weight 1 the weighted
// oracle degenerates to the rank-ceil(qN) definition, so it must agree
// with ExactQuantiles on every queried q — the λ=0 consistency the
// decayed harness evaluation relies on.
func TestWeightedQuantilesUnitWeights(t *testing.T) {
	values := make([]float64, 997)
	state := uint64(12345)
	for i := range values {
		state = state*6364136223846793005 + 1442695040888963407
		values[i] = float64(state>>40) / 1000
	}
	weights := make([]float64, len(values))
	for i := range weights {
		weights[i] = 1
	}
	exact := NewExactQuantiles(values)
	weighted := NewWeightedQuantiles(values, weights)
	for q := 0.01; q <= 1.0; q += 0.01 {
		if got, want := weighted.Quantile(q), exact.Quantile(q); got != want {
			t.Fatalf("q=%v: weighted %v, exact %v", q, got, want)
		}
	}
}

// TestWeightedQuantilesHandComputed pins the weighted definition on a
// small case: values 1..4 with weights 4,1,1,2 (total 8) — the
// cumulative weights 4,5,6,8 place the median (target 4) at value 1
// and q=0.75 (target 6) at value 3.
func TestWeightedQuantilesHandComputed(t *testing.T) {
	w := NewWeightedQuantiles([]float64{3, 1, 4, 2}, []float64{1, 4, 2, 1})
	cases := []struct{ q, want float64 }{
		{0.25, 1}, {0.5, 1}, {0.625, 2}, {0.75, 3}, {1, 4},
	}
	for _, c := range cases {
		if got := w.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestWeightedQuantilesDecayShift: exponentially down-weighting the
// upper half of the data pulls every interior quantile down — the
// qualitative property decayed windows exist for.
func TestWeightedQuantilesDecayShift(t *testing.T) {
	n := 1000
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1
		if i >= n/2 {
			weights[i] = 0.1 // "old pane" heavily decayed
		}
	}
	plain := NewExactQuantiles(values)
	decayed := NewWeightedQuantiles(values, weights)
	for _, q := range []float64{0.5, 0.75, 0.9} {
		if got, ref := decayed.Quantile(q), plain.Quantile(q); got >= ref {
			t.Errorf("q=%v: decayed %v, want below undecayed %v", q, got, ref)
		}
	}
}
