// Package invariant gates the repository's structural assertion hooks.
//
// Sketch packages keep their invariant checks in files named
// invariants.go behind the `invariants` build tag; without the tag the
// hooks compile to empty inlined functions and the sketches run at full
// speed. With
//
//	go test -tags invariants ./internal/...
//
// every compaction, merge, and deserialization re-verifies the
// structural contracts the estimators depend on (weight conservation in
// KLL, bin-count/Count() agreement in DDSketch and UDDSketch, finite
// power sums in Moments, count conservation across every merge path).
//
// The constant Enabled mirrors the build tag so ordinary code can guard
// more expensive bookkeeping with `if invariant.Enabled { ... }` and
// have the compiler delete the branch in normal builds.
package invariant

import "fmt"

// Violationf reports a broken structural invariant and panics. A
// violation means sketch state is corrupt — every estimate derived from
// it is suspect — so continuing would silently skew experiment tables;
// failing loudly is the point of the build tag.
func Violationf(name, op, format string, args ...any) {
	panic(fmt.Sprintf("invariant violation [%s.%s]: %s", name, op, fmt.Sprintf(format, args...)))
}
