//go:build !invariants

package invariant

// Enabled reports whether the binary was built with the invariants tag.
const Enabled = false
