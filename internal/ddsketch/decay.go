package ddsketch

import (
	"math"

	"repro/internal/sketch"
)

var _ sketch.CountScaler = (*Sketch)(nil)

// ScaleCount implements sketch.CountScaler by rounded bucket scaling,
// the same mechanism UDDSketch uses: both stores are rebuilt with each
// bucket count c replaced by round(c·g) (Add ignores non-positive
// counts, so buckets rounding to 0 vanish), and the zero counter scales
// the same way. Count() is derived from store totals, so no separate
// count fixup is needed. Stores iterate in ascending index order and
// each bucket transforms independently, so the rebuild is
// deterministic; rebuilding into a fresh store of the same kind keeps
// any collapsing bound intact (the scaled index span is a subset of the
// old one, so no new collapses occur). min/max are kept as conservative
// bounds.
func (s *Sketch) ScaleCount(g float64) {
	if math.IsNaN(g) || g >= 1 {
		return
	}
	if g <= 0 {
		s.Reset()
		return
	}
	scaleStore := func(src Store) Store {
		dst := s.storeFn()
		src.ForEach(func(i int, c int64) bool {
			dst.Add(i, int64(math.Round(float64(c)*g)))
			return true
		})
		return dst
	}
	s.positive = scaleStore(s.positive)
	s.negative = scaleStore(s.negative)
	s.zeroCnt = int64(math.Round(float64(s.zeroCnt) * g))
	if s.Count() == 0 {
		s.Reset()
	}
}
