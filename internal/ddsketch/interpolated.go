package ddsketch

import (
	"fmt"
	"math"
)

// IndexMapping generalizes the value→bucket mapping so the sketch can
// trade a slightly larger bucket count for much cheaper indexing, as the
// reference DDSketch implementation's mapping family does: the exact
// logarithmic mapping calls log() per insert, while interpolated mappings
// extract the binary exponent from the float representation and
// approximate log2 on the mantissa with a polynomial.
//
// Every mapping here preserves the α guarantee *by construction*: the
// polynomial's worst-case slope distortion relative to the true log2 is
// computed numerically at init and folded into the index multiplier, so
// buckets are (at most slightly) narrower than the exact mapping's —
// more buckets, same guarantee, faster Index.
type IndexMapping interface {
	// Index returns the bucket for a positive value.
	Index(x float64) int
	// Value returns a representative value of bucket i within relative
	// distance α of every value in the bucket.
	Value(i int) float64
	// Alpha returns the guaranteed relative accuracy.
	Alpha() float64
	// Gamma returns the worst-case bucket ratio (1+α)/(1−α).
	Gamma() float64
	// MinIndexable returns the smallest indexable positive value.
	MinIndexable() float64
	// Name identifies the mapping kind for serde compatibility checks.
	Name() string
}

// Logarithmic adapts the exact Mapping to the IndexMapping interface.
type Logarithmic struct{ Mapping }

// NewLogarithmic returns the exact log_γ mapping.
func NewLogarithmic(alpha float64) (Logarithmic, error) {
	m, err := NewMapping(alpha)
	return Logarithmic{m}, err
}

// MinIndexable implements IndexMapping.
func (l Logarithmic) MinIndexable() float64 { return l.MinIndexableValue() }

// Name implements IndexMapping.
func (Logarithmic) Name() string { return "logarithmic" }

// polyMapping implements IndexMapping for any monotone polynomial
// approximation P of log2(1+s) on s ∈ [0, 1) with P(0)=0, P(1)=1 (so the
// approximation ℓ(x) = exponent(x) + P(mantissa(x)−1) is continuous and
// ℓ(2x) = ℓ(x)+1).
type polyMapping struct {
	name       string
	alpha      float64
	gamma      float64
	multiplier float64 // buckets per unit of ℓ
	coeff      []float64
	deriv      []float64
}

func newPolyMapping(name string, alpha float64, coeff []float64) (*polyMapping, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("ddsketch: alpha must be in (0,1), got %v", alpha)
	}
	deriv := make([]float64, len(coeff)-1)
	for i := 1; i < len(coeff); i++ {
		deriv[i-1] = float64(i) * coeff[i]
	}
	m := &polyMapping{
		name:  name,
		alpha: alpha,
		gamma: (1 + alpha) / (1 - alpha),
		coeff: coeff,
		deriv: deriv,
	}
	// Worst-case distortion: the ℓ-width a true log2-width of 1 can be
	// squeezed into is min over s of dℓ/dlog2 = P'(s)·(1+s)·ln2. A bucket
	// of ℓ-width 1/multiplier therefore spans at most
	// 1/(multiplier·minSlope) in log2; equate to log2(γ).
	minSlope := math.Inf(1)
	const steps = 1 << 14
	for i := 0; i <= steps; i++ {
		s := float64(i) / steps
		slope := m.polyDeriv(s) * (1 + s) * math.Ln2
		if slope <= 0 {
			return nil, fmt.Errorf("ddsketch: mapping %s polynomial not monotone", name)
		}
		if slope < minSlope {
			minSlope = slope
		}
	}
	m.multiplier = 1 / (minSlope * math.Log2(m.gamma))
	return m, nil
}

func (m *polyMapping) poly(s float64) float64 {
	v := 0.0
	for i := len(m.coeff) - 1; i >= 0; i-- {
		v = v*s + m.coeff[i]
	}
	return v
}

func (m *polyMapping) polyDeriv(s float64) float64 {
	v := 0.0
	for i := len(m.deriv) - 1; i >= 0; i-- {
		v = v*s + m.deriv[i]
	}
	return v
}

// approxLog computes ℓ(x) = exponent + P(mantissa−1) without calling log.
func (m *polyMapping) approxLog(x float64) float64 {
	bits := math.Float64bits(x)
	e := float64(int((bits>>52)&0x7ff) - 1023)
	s := math.Float64frombits((bits&0x000fffffffffffff)|0x3ff0000000000000) - 1
	return e + m.poly(s)
}

// approxLogInverse inverts ℓ via Newton iteration on the mantissa
// polynomial (monotone on [0, 1]).
func (m *polyMapping) approxLogInverse(y float64) float64 {
	e := math.Floor(y)
	frac := y - e
	s := frac // good starting point: P ≈ identity-ish
	for i := 0; i < 16; i++ {
		f := m.poly(s) - frac
		if math.Abs(f) < 1e-14 {
			break
		}
		s -= f / m.polyDeriv(s)
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
	}
	return math.Ldexp(1+s, int(e))
}

// Index implements IndexMapping.
//
//sketch:hotpath
func (m *polyMapping) Index(x float64) int {
	return int(math.Ceil(m.approxLog(x) * m.multiplier))
}

// Value implements IndexMapping: the harmonic midpoint 2·lo·hi/(lo+hi) of
// the bucket's value bounds, within α of both ends whenever hi/lo ≤ γ.
func (m *polyMapping) Value(i int) float64 {
	lo := m.approxLogInverse((float64(i) - 1) / m.multiplier)
	hi := m.approxLogInverse(float64(i) / m.multiplier)
	return 2 * lo * hi / (lo + hi)
}

// Alpha implements IndexMapping.
func (m *polyMapping) Alpha() float64 { return m.alpha }

// Gamma implements IndexMapping.
func (m *polyMapping) Gamma() float64 { return m.gamma }

// MinIndexable implements IndexMapping.
func (m *polyMapping) MinIndexable() float64 {
	// Stay well inside the subnormal-free range so exponent extraction
	// remains exact.
	return math.Ldexp(1, -1000)
}

// Name implements IndexMapping.
func (m *polyMapping) Name() string { return m.name }

// NewCubicMapping returns the cubically-interpolated mapping (the
// reference implementation's CubicallyInterpolatedMapping polynomial
// A=6/35, B=−3/5, C=10/7): ~1% more buckets than exact, no log() call.
func NewCubicMapping(alpha float64) (IndexMapping, error) {
	return newPolyMapping("cubic", alpha, []float64{0, 10.0 / 7, -3.0 / 5, 6.0 / 35})
}

// NewLinearMapping returns the linearly-interpolated mapping
// (P(s) = s): the fastest Index at the cost of ~44% more buckets.
func NewLinearMapping(alpha float64) (IndexMapping, error) {
	return newPolyMapping("linear", alpha, []float64{0, 1})
}
