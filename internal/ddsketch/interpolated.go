package ddsketch

import (
	"fmt"
	"math"

	"repro/internal/fastlog"
)

// IndexMapping generalizes the value→bucket mapping so the sketch can
// trade a slightly larger bucket count for much cheaper indexing, as the
// reference DDSketch implementation's mapping family does: the exact
// logarithmic mapping calls log() per insert, while interpolated mappings
// extract the binary exponent from the float representation and
// approximate log2 on the mantissa with a polynomial (internal/fastlog).
//
// Every mapping here preserves the α guarantee *by construction*: the
// polynomial's worst-case slope distortion relative to the true log2 is
// computed numerically at init and folded into the index multiplier, so
// buckets are (at most slightly) narrower than the exact mapping's —
// more buckets, same guarantee, faster Index.
type IndexMapping interface {
	// Index returns the bucket for a positive value.
	Index(x float64) int
	// Value returns a representative value of bucket i within relative
	// distance α of every value in the bucket.
	Value(i int) float64
	// Alpha returns the guaranteed relative accuracy.
	Alpha() float64
	// Gamma returns the worst-case bucket ratio (1+α)/(1−α).
	Gamma() float64
	// MinIndexable returns the smallest indexable positive value.
	MinIndexable() float64
	// Name identifies the mapping kind for serde compatibility checks.
	Name() string
}

// Logarithmic adapts the exact Mapping to the IndexMapping interface.
type Logarithmic struct{ Mapping }

// NewLogarithmic returns the exact log_γ mapping.
func NewLogarithmic(alpha float64) (Logarithmic, error) {
	m, err := NewMapping(alpha)
	return Logarithmic{m}, err
}

// MinIndexable implements IndexMapping.
func (l Logarithmic) MinIndexable() float64 { return l.MinIndexableValue() }

// Name implements IndexMapping.
func (Logarithmic) Name() string { return "logarithmic" }

// checkMappingAlpha validates the accuracy parameter shared by all
// mapping constructors.
func checkMappingAlpha(alpha float64) error {
	if !(alpha > 0 && alpha < 1) {
		return fmt.Errorf("ddsketch: alpha must be in (0,1), got %v", alpha)
	}
	return nil
}

// Cubic is the cubically-interpolated mapping (the reference
// implementation's CubicallyInterpolatedMapping polynomial A=6/35,
// B=−3/5, C=10/7): ~1% more buckets than exact, no log() call per
// insert. It is a small value type so the batch kernels can hold it
// concretely and devirtualize Index into straight-line float code.
type Cubic struct {
	alpha      float64
	gamma      float64
	multiplier float64 // buckets per unit of ℓ = 1/(minSlope·log2 γ)
}

// NewCubicMapping returns the cubically-interpolated mapping — the
// default mapping of New/NewCollapsing.
func NewCubicMapping(alpha float64) (IndexMapping, error) {
	m, err := NewCubic(alpha)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NewCubic is NewCubicMapping returning the concrete type.
func NewCubic(alpha float64) (Cubic, error) {
	if err := checkMappingAlpha(alpha); err != nil {
		return Cubic{}, err
	}
	gamma := (1 + alpha) / (1 - alpha)
	return Cubic{
		alpha:      alpha,
		gamma:      gamma,
		multiplier: 1 / (fastlog.CubicMinSlope * math.Log2(gamma)),
	}, nil
}

// Index implements IndexMapping.
//
//sketch:hotpath
func (m Cubic) Index(x float64) int {
	return int(math.Ceil(fastlog.Log2Cubic(x) * m.multiplier))
}

// Value implements IndexMapping: the harmonic midpoint 2·lo·hi/(lo+hi) of
// the bucket's value bounds, within α of both ends whenever hi/lo ≤ γ.
// Computed as 2·hi/(1+hi/lo) — the product form overflows past ~1e154.
func (m Cubic) Value(i int) float64 {
	lo := fastlog.Log2CubicInverse((float64(i) - 1) / m.multiplier)
	hi := fastlog.Log2CubicInverse(float64(i) / m.multiplier)
	return 2 * (hi / (1 + hi/lo))
}

// Alpha implements IndexMapping.
func (m Cubic) Alpha() float64 { return m.alpha }

// Gamma implements IndexMapping.
func (m Cubic) Gamma() float64 { return m.gamma }

// MinIndexable implements IndexMapping: below fastlog.MinIndexable the
// exponent extraction is no longer exact, so smaller magnitudes go to
// the exact-zero counter.
func (Cubic) MinIndexable() float64 { return fastlog.MinIndexable }

// Name implements IndexMapping.
func (Cubic) Name() string { return "cubic" }

// Linear is the linearly-interpolated mapping (P(s) = s): the cheapest
// Index at the cost of ~44% more buckets (minSlope = ln2).
type Linear struct {
	alpha      float64
	gamma      float64
	multiplier float64
}

// NewLinearMapping returns the linearly-interpolated mapping.
func NewLinearMapping(alpha float64) (IndexMapping, error) {
	m, err := NewLinear(alpha)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NewLinear is NewLinearMapping returning the concrete type.
func NewLinear(alpha float64) (Linear, error) {
	if err := checkMappingAlpha(alpha); err != nil {
		return Linear{}, err
	}
	gamma := (1 + alpha) / (1 - alpha)
	return Linear{
		alpha:      alpha,
		gamma:      gamma,
		multiplier: 1 / (fastlog.LinearMinSlope * math.Log2(gamma)),
	}, nil
}

// Index implements IndexMapping.
//
//sketch:hotpath
func (m Linear) Index(x float64) int {
	return int(math.Ceil(fastlog.Log2Linear(x) * m.multiplier))
}

// Value implements IndexMapping (overflow-safe form, as in Cubic.Value).
func (m Linear) Value(i int) float64 {
	lo := fastlog.Log2LinearInverse((float64(i) - 1) / m.multiplier)
	hi := fastlog.Log2LinearInverse(float64(i) / m.multiplier)
	return 2 * (hi / (1 + hi/lo))
}

// Alpha implements IndexMapping.
func (m Linear) Alpha() float64 { return m.alpha }

// Gamma implements IndexMapping.
func (m Linear) Gamma() float64 { return m.gamma }

// MinIndexable implements IndexMapping.
func (Linear) MinIndexable() float64 { return fastlog.MinIndexable }

// Name implements IndexMapping.
func (Linear) Name() string { return "linear" }
