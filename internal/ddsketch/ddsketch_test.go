package ddsketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func relErr(truth, est float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(truth-est) / math.Abs(truth)
}

func TestMappingIndexBrackets(t *testing.T) {
	m, err := NewMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Gamma(), (1+0.01)/(1-0.01); math.Abs(got-want) > 1e-12 {
		t.Fatalf("gamma = %v, want %v", got, want)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		x := math.Exp(rng.Float64()*40 - 20) // e^-20 .. e^20
		idx := m.Index(x)
		lo, hi := m.LowerBound(idx), m.UpperBound(idx)
		if !(x > lo*(1-1e-12) && x <= hi*(1+1e-12)) {
			t.Fatalf("x=%v not in bucket %d (%v, %v]", x, idx, lo, hi)
		}
		if re := relErr(x, m.Value(idx)); re > m.Alpha()*(1+1e-9) {
			t.Fatalf("bucket midpoint rel err %v > alpha for x=%v", re, x)
		}
	}
}

func TestMappingInvalidAlpha(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewMapping(a); err == nil {
			t.Errorf("NewMapping(%v) should fail", a)
		}
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(0.01)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("Quantile on empty: got %v, want ErrEmpty", err)
	}
	if _, err := s.Rank(1); err != sketch.ErrEmpty {
		t.Errorf("Rank on empty: got %v, want ErrEmpty", err)
	}
	if s.Count() != 0 {
		t.Errorf("Count = %d, want 0", s.Count())
	}
}

func TestInvalidQuantile(t *testing.T) {
	s := New(0.01)
	s.Insert(1)
	for _, q := range []float64{0, -0.1, 1.1, math.NaN()} {
		if _, err := s.Quantile(q); err == nil {
			t.Errorf("Quantile(%v) should fail", q)
		}
	}
}

// The headline property: every quantile estimate is within alpha relative
// error, for data spanning several orders of magnitude.
func TestRelativeErrorGuarantee(t *testing.T) {
	for _, alpha := range []float64{0.001, 0.01, 0.05} {
		s := New(alpha)
		rng := rand.New(rand.NewPCG(42, 43))
		data := make([]float64, 100000)
		for i := range data {
			// Pareto-ish long tail.
			data[i] = 1 / math.Pow(1-rng.Float64(), 1.3)
			s.Insert(data[i])
		}
		sort.Float64s(data)
		for _, q := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
			truth := exactQuantile(data, q)
			est, err := s.Quantile(q)
			if err != nil {
				t.Fatalf("alpha=%v q=%v: %v", alpha, q, err)
			}
			if re := relErr(truth, est); re > alpha*(1+1e-9) {
				t.Errorf("alpha=%v q=%v: rel err %v > alpha (truth=%v est=%v)", alpha, q, re, truth, est)
			}
		}
	}
}

func TestNegativeAndZeroValues(t *testing.T) {
	s := New(0.01)
	data := []float64{-100, -10, -1, 0, 0, 1, 10, 100, 1000}
	for _, x := range data {
		s.Insert(x)
	}
	if s.Count() != uint64(len(data)) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(data))
	}
	// Median (5th of 9) is 0 exactly.
	got, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("median = %v, want 0", got)
	}
	// Lowest quantile is near -100.
	lo, _ := s.Quantile(0.12) // rank ceil(0.12*9)=2 → -10
	if re := relErr(-10, lo); re > 0.01 {
		t.Errorf("q=0.12 = %v, want ≈ -10", lo)
	}
	q1, _ := s.Quantile(1)
	if re := relErr(1000, q1); re > 0.01 {
		t.Errorf("q=1 = %v, want ≈ 1000", q1)
	}
}

func TestRankConsistency(t *testing.T) {
	s := New(0.01)
	rng := rand.New(rand.NewPCG(7, 8))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = rng.Float64() * 1000
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := exactQuantile(data, q)
		r, err := s.Rank(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-q) > 0.02 {
			t.Errorf("Rank(%v) = %v, want ≈ %v", x, r, q)
		}
	}
}

func TestMergeMatchesUnion(t *testing.T) {
	a, b := New(0.01), New(0.01)
	union := New(0.01)
	rng := rand.New(rand.NewPCG(11, 12))
	var all []float64
	for i := 0; i < 30000; i++ {
		x := math.Exp(rng.NormFloat64() * 3)
		all = append(all, x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
		union.Insert(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != union.Count() {
		t.Fatalf("merged count %d != union count %d", a.Count(), union.Count())
	}
	sort.Float64s(all)
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		truth := exactQuantile(all, q)
		got, err := a.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		// Merged sketch retains the full alpha guarantee.
		if re := relErr(truth, got); re > 0.01*(1+1e-9) {
			t.Errorf("q=%v: merged rel err %v > alpha", q, re)
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	a, b := New(0.01), New(0.02)
	a.Insert(1)
	b.Insert(2)
	if err := a.Merge(b); err == nil {
		t.Error("merging different alphas should fail")
	}
}

func TestCollapsingStoreBoundsBuckets(t *testing.T) {
	s := NewCollapsing(0.01, 128)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200000; i++ {
		s.Insert(math.Exp(rng.Float64()*20 - 10)) // huge range
	}
	if n := s.NonEmptyBuckets(); n > 128 {
		t.Errorf("collapsing store holds %d buckets, want <= 128", n)
	}
	if s.CollapseCount() == 0 {
		t.Error("expected at least one collapse on wide-range data")
	}
	// Upper quantiles keep the guarantee (only low buckets collapse).
	var data []float64
	rng = rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200000; i++ {
		data = append(data, math.Exp(rng.Float64()*20-10))
	}
	sort.Float64s(data)
	for _, q := range []float64{0.9, 0.95, 0.99} {
		truth := exactQuantile(data, q)
		got, _ := s.Quantile(q)
		if re := relErr(truth, got); re > 0.01*(1+1e-9) {
			t.Errorf("q=%v: rel err %v > alpha after collapses", q, re)
		}
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	s := New(0.01)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 10000; i++ {
		s.Insert(rng.NormFloat64() * 100) // includes negatives
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() {
		t.Fatalf("count %d != %d", d.Count(), s.Count())
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		a, _ := s.Quantile(q)
		b, _ := d.Quantile(q)
		if a != b {
			t.Errorf("q=%v: %v != %v after round trip", q, a, b)
		}
	}
}

func TestSerdeCorrupt(t *testing.T) {
	s := New(0.01)
	s.Insert(1)
	blob, _ := s.MarshalBinary()
	var d Sketch
	if err := d.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob should fail")
	}
	if err := d.UnmarshalBinary(append(blob, 0)); err == nil {
		t.Error("trailing garbage should fail")
	}
	blob[0] = 0xFF
	if err := d.UnmarshalBinary(blob); err == nil {
		t.Error("wrong tag should fail")
	}
}

func TestReset(t *testing.T) {
	s := New(0.01)
	for i := 1; i <= 100; i++ {
		s.Insert(float64(i))
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after reset = %d", s.Count())
	}
	s.Insert(42)
	got, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(42, got); re > 0.01 {
		t.Errorf("median after reset+insert = %v, want ≈ 42", got)
	}
}

// Property: for any positive data set, every quantile estimate is within
// alpha relative error of the exact quantile.
func TestQuickRelativeError(t *testing.T) {
	f := func(vals []uint32, qFrac uint16) bool {
		if len(vals) == 0 {
			return true
		}
		s := New(0.01)
		data := make([]float64, len(vals))
		for i, v := range vals {
			data[i] = float64(v)/1e3 + 0.001 // positive, wide range
			s.Insert(data[i])
		}
		sort.Float64s(data)
		q := (float64(qFrac) + 1) / 65537 // (0,1)
		truth := exactQuantile(data, q)
		est, err := s.Quantile(q)
		if err != nil {
			return false
		}
		return relErr(truth, est) <= 0.01*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merge is count-preserving and order-insensitive for counts.
func TestQuickMergeCounts(t *testing.T) {
	f := func(a, b []float32) bool {
		s1, s2 := New(0.02), New(0.02)
		for _, v := range a {
			s1.Insert(float64(v))
		}
		for _, v := range b {
			s2.Insert(float64(v))
		}
		want := s1.Count() + s2.Count()
		if err := s1.Merge(s2); err != nil {
			return false
		}
		return s1.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoreGrowthCoversRange(t *testing.T) {
	st := NewDenseStore()
	st.Add(1000, 1)
	st.Add(-1000, 2)
	st.Add(0, 3)
	if st.Total() != 6 {
		t.Fatalf("total = %d", st.Total())
	}
	if st.MinIndex() != -1000 || st.MaxIndex() != 1000 {
		t.Fatalf("range [%d,%d]", st.MinIndex(), st.MaxIndex())
	}
	var visited []int
	st.ForEach(func(i int, c int64) bool {
		visited = append(visited, i)
		return true
	})
	if len(visited) != 3 || visited[0] != -1000 || visited[2] != 1000 {
		t.Fatalf("ForEach order: %v", visited)
	}
}

func TestSparseStore(t *testing.T) {
	st := NewSparseStore()
	st.Add(5, 2)
	st.Add(-3, 1)
	st.Add(5, 1)
	if st.Total() != 4 || st.NonEmptyBuckets() != 2 {
		t.Fatalf("total=%d buckets=%d", st.Total(), st.NonEmptyBuckets())
	}
	if st.MinIndex() != -3 || st.MaxIndex() != 5 {
		t.Fatalf("range [%d,%d]", st.MinIndex(), st.MaxIndex())
	}
	cl := st.Clone()
	st.Add(7, 1)
	if cl.Total() != 4 {
		t.Error("clone shares state with original")
	}
}
