package ddsketch

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/sketch"
)

// TestDegrade pins the sketch.Degrader contract for DDSketch: each step
// halves the non-empty bucket count by folding the lowest-value region,
// conserves the count exactly, leaves upper quantiles within the α
// guarantee, and eventually refuses with ErrNotDegradable.
func TestDegrade(t *testing.T) {
	for _, mk := range []struct {
		name string
		s    *Sketch
	}{
		{"dense", New(0.01)},
		{"paginated", NewPaginated(0.01)},
	} {
		t.Run(mk.name, func(t *testing.T) {
			s := mk.s
			rng := rand.New(rand.NewPCG(1, 2))
			const n = 50000
			for i := 0; i < n; i++ {
				x := rng.ExpFloat64() * 100
				if i%10 == 0 {
					x = -x // exercise the negative store too
				}
				s.Insert(x)
			}
			p99Before, err := s.Quantile(0.99)
			if err != nil {
				t.Fatal(err)
			}
			// One degrade step folds the lowest half of the buckets: the
			// upper tail keeps its α guarantee (boundary well below p99).
			if _, err := s.Degrade(); err != nil {
				t.Fatalf("first degrade: %v", err)
			}
			p99After, err := s.Quantile(0.99)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(p99After-p99Before) / p99Before; rel > 3*s.Alpha() {
				t.Errorf("p99 moved %.2f%% after one degrade (%v -> %v)", rel*100, p99Before, p99After)
			}
			buckets := s.NonEmptyBuckets()
			steps := 1
			for {
				freed, err := s.Degrade()
				if errors.Is(err, sketch.ErrNotDegradable) {
					break
				}
				if err != nil {
					t.Fatalf("degrade step %d: %v", steps, err)
				}
				steps++
				if freed < 0 {
					t.Fatalf("step %d: negative freed %d", steps, freed)
				}
				if s.Count() != n {
					t.Fatalf("step %d: count %d, want %d", steps, s.Count(), n)
				}
				if nb := s.NonEmptyBuckets(); nb >= buckets {
					t.Fatalf("step %d: buckets %d did not shrink from %d", steps, nb, buckets)
				} else {
					buckets = nb
				}
			}
			if steps < 3 {
				t.Fatalf("only %d degrade steps before exhaustion", steps)
			}
			// After degradation to exhaustion (a handful of buckets per
			// store) no quantile keeps the α guarantee, but estimates stay
			// clamped to the exact observed range.
			if lo, _ := s.Quantile(0.001); lo < s.min || lo > s.max {
				t.Errorf("low quantile %v escaped [%v, %v]", lo, s.min, s.max)
			}
		})
	}
}

// TestDegradeMergesWithFresh pins that a degraded DDSketch still merges
// with an undegraded sketch of the same mapping: Degrade collapses the
// store but never touches γ.
func TestDegradeMergesWithFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	degraded, fresh := New(0.01), New(0.01)
	for i := 0; i < 20000; i++ {
		degraded.Insert(rng.ExpFloat64() * 10)
		fresh.Insert(rng.ExpFloat64() * 10)
	}
	if _, err := degraded.Degrade(); err != nil {
		t.Fatal(err)
	}
	want := degraded.Count() + fresh.Count()
	if err := fresh.Merge(degraded); err != nil {
		t.Fatalf("fresh.Merge(degraded): %v", err)
	}
	if fresh.Count() != want {
		t.Errorf("merged count = %d, want %d", fresh.Count(), want)
	}
	if _, err := fresh.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
}
