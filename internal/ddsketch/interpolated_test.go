package ddsketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func mappings(t *testing.T, alpha float64) map[string]IndexMapping {
	t.Helper()
	log, err := NewLogarithmic(alpha)
	if err != nil {
		t.Fatal(err)
	}
	cubic, err := NewCubicMapping(alpha)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewLinearMapping(alpha)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]IndexMapping{"logarithmic": log, "cubic": cubic, "linear": lin}
}

// The defining property of every mapping: the representative value of a
// value's bucket is within alpha relative error of the value itself.
func TestMappingGuarantee(t *testing.T) {
	for _, alpha := range []float64{0.001, 0.01, 0.05} {
		for name, m := range mappings(t, alpha) {
			rng := rand.New(rand.NewPCG(1, 2))
			for i := 0; i < 20000; i++ {
				x := math.Exp(rng.Float64()*60 - 30)
				v := m.Value(m.Index(x))
				if re := math.Abs(v-x) / x; re > alpha*(1+1e-6) {
					t.Fatalf("%s alpha=%v: value %v of bucket for %v has rel err %v",
						name, alpha, v, x, re)
				}
			}
		}
	}
}

// Index must be monotone non-decreasing in x.
func TestMappingMonotone(t *testing.T) {
	for name, m := range mappings(t, 0.01) {
		rng := rand.New(rand.NewPCG(3, 4))
		xs := make([]float64, 5000)
		for i := range xs {
			xs[i] = math.Exp(rng.Float64()*40 - 20)
		}
		sort.Float64s(xs)
		prev := math.MinInt32
		for _, x := range xs {
			i := m.Index(x)
			if i < prev {
				t.Fatalf("%s: Index not monotone at %v", name, x)
			}
			prev = i
		}
	}
}

// Interpolated mappings may use more buckets than exact, never fewer
// than a small factor, and the known ratios hold (~1% cubic, ~44%
// linear).
func TestMappingBucketOverhead(t *testing.T) {
	ms := mappings(t, 0.01)
	span := func(m IndexMapping) int {
		return m.Index(1e9) - m.Index(1e-9)
	}
	logSpan := span(ms["logarithmic"])
	cubicSpan := span(ms["cubic"])
	linSpan := span(ms["linear"])
	if cubicSpan < logSpan {
		t.Errorf("cubic span %d < exact %d", cubicSpan, logSpan)
	}
	if r := float64(cubicSpan) / float64(logSpan); r > 1.05 {
		t.Errorf("cubic overhead ratio %v, expected ≈ 1.01", r)
	}
	if r := float64(linSpan) / float64(logSpan); r < 1.3 || r > 1.6 {
		t.Errorf("linear overhead ratio %v, expected ≈ 1.44", r)
	}
}

func TestSketchWithCubicMapping(t *testing.T) {
	m, err := NewCubicMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithMapping(m, func() Store { return NewDenseStore() })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	data := make([]float64, 100000)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.2)
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		truth := exactQuantile(data, q)
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(truth, est); re > 0.01*(1+1e-6) {
			t.Errorf("q=%v: rel err %v > alpha with cubic mapping", q, re)
		}
	}
	// Serde round-trips the mapping kind.
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Quantile(0.5)
	b, _ := d.Quantile(0.5)
	if a != b {
		t.Errorf("median %v != %v after round trip", a, b)
	}
}

// Merging sketches whose mappings bucket at different boundaries must
// be rejected cleanly for every mapping pair (New's default is cubic).
func TestMappingMergeIncompatible(t *testing.T) {
	lm, _ := NewLogarithmic(0.01)
	a, _ := NewWithMapping(lm, func() Store { return NewDenseStore() })
	b := New(0.01)
	a.Insert(1)
	b.Insert(2)
	if err := a.Merge(b); err == nil {
		t.Error("logarithmic and cubic mappings should not merge")
	}
	if err := b.Merge(a); err == nil {
		t.Error("cubic and logarithmic mappings should not merge")
	}
	linm, _ := NewLinearMapping(0.01)
	c, _ := NewWithMapping(linm, func() Store { return NewDenseStore() })
	c.Insert(3)
	if err := b.Merge(c); err == nil {
		t.Error("cubic and linear mappings should not merge")
	}
	// Same mapping still merges.
	d := New(0.01)
	d.Insert(4)
	if err := b.Merge(d); err != nil {
		t.Errorf("same-mapping merge failed: %v", err)
	}
}

// Property: Value(Index(x)) stays within a bucket ratio of x for the
// interpolated mappings — the round trip through the bit-trick ℓ and
// its Newton inverse can never leave the bucket.
func TestQuickLogInverse(t *testing.T) {
	cm, err := NewCubic(0.01)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewLinear(0.01)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		x := math.Exp(float64(raw)/float64(math.MaxUint32)*40 - 20)
		vc := cm.Value(cm.Index(x))
		vl := lm.Value(lm.Index(x))
		return math.Abs(vc-x)/x <= cm.Alpha()*(1+1e-6) &&
			math.Abs(vl-x)/x <= lm.Alpha()*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
