//go:build invariants

package ddsketch

import (
	"math"

	"repro/internal/invariant"
)

// assertInvariants re-verifies DDSketch's structural contracts:
//
//   - Bin-count conservation: each store's cached Total() must equal
//     the sum of its bucket counts (walked via ForEach), and no bucket
//     may hold a negative count — Count() and every rank computation
//     are derived from these totals.
//   - Non-negative zero counter.
//   - Ordered bounds: min ≤ max (both non-NaN) whenever non-empty.
func (s *Sketch) assertInvariants(op string) {
	checkStore := func(side string, st Store) {
		var sum int64
		st.ForEach(func(i int, c int64) bool {
			if c < 0 {
				invariant.Violationf("ddsketch", op, "%s store bucket %d has negative count %d", side, i, c)
			}
			sum += c
			return true
		})
		if sum != st.Total() {
			invariant.Violationf("ddsketch", op, "%s store total %d disagrees with bucket sum %d", side, st.Total(), sum)
		}
	}
	checkStore("positive", s.positive)
	checkStore("negative", s.negative)
	if s.zeroCnt < 0 {
		invariant.Violationf("ddsketch", op, "negative zero count %d", s.zeroCnt)
	}
	if s.Count() > 0 {
		if math.IsNaN(s.min) || math.IsNaN(s.max) || !(s.min <= s.max) {
			invariant.Violationf("ddsketch", op, "bounds broken: min %v, max %v with count %d", s.min, s.max, s.Count())
		}
	}
}

// assertCount verifies count conservation across a merge.
func (s *Sketch) assertCount(op string, want uint64) {
	if got := s.Count(); got != want {
		invariant.Violationf("ddsketch", op, "count conservation broken: got %d, want %d", got, want)
	}
	s.assertInvariants(op)
}
