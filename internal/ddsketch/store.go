package ddsketch

import "sort"

// Store holds bucket counts keyed by integer index. DDSketch's behaviour
// under bounded memory depends on the store implementation, and the study
// calls those differences out explicitly (array-backed dense store vs the
// collapsing variant, Sec 4.3), so the store is pluggable.
type Store interface {
	// Add increments bucket index by count (count > 0).
	Add(index int, count int64)
	// Total returns the sum of all bucket counts.
	Total() int64
	// IsEmpty reports whether the store holds no counts.
	IsEmpty() bool
	// MinIndex and MaxIndex return the smallest/largest non-empty bucket
	// index; they must not be called on an empty store.
	MinIndex() int
	MaxIndex() int
	// ForEach visits non-empty buckets in ascending index order, stopping
	// early if fn returns false.
	ForEach(fn func(index int, count int64) bool)
	// NonEmptyBuckets returns the number of buckets holding a count.
	NonEmptyBuckets() int
	// NumbersHeld reports the structural size in 8-byte numbers (array
	// slots for dense stores, map entries × 3 for the sparse store),
	// implementing the paper's Table 3 accounting.
	NumbersHeld() int
	// CollapseCount reports how many bucket-collapse operations the store
	// has performed (0 for unbounded stores).
	CollapseCount() int
	// Clone returns a deep copy.
	Clone() Store
	// Reset drops all counts, keeping configuration.
	Reset()
}

// initialDenseBuckets matches the paper's observation that the unbounded
// dense store "would initially create a count array of 64 buckets, and
// expand the array based on the range of the values observed" (Sec 4.3).
const initialDenseBuckets = 64

// DenseStore is the unbounded array-backed store: a contiguous count array
// whose first slot corresponds to bucket index `offset`. Growth re-centers
// the array around the observed index range.
type DenseStore struct {
	counts []int64
	offset int
	total  int64
	minIdx int
	maxIdx int
}

// NewDenseStore returns an empty unbounded dense store.
func NewDenseStore() *DenseStore {
	return &DenseStore{minIdx: int(^uint(0)>>1) - 1, maxIdx: -(int(^uint(0)>>1) - 1)}
}

// Add implements Store.
func (s *DenseStore) Add(index int, count int64) {
	if count <= 0 {
		return
	}
	s.ensure(index)
	s.counts[index-s.offset] += count
	s.total += count
	if index < s.minIdx {
		s.minIdx = index
	}
	if index > s.maxIdx {
		s.maxIdx = index
	}
}

// AddOnes increments each listed bucket by one — the batched-insert hot
// path. The index range is scanned first so the backing array grows at
// most twice for the whole batch (once per range end) instead of
// per-element; the increments themselves are then direct array ops.
// Equivalent to calling Add(i, 1) for each index, except that the
// array's spare capacity (and hence NumbersHeld) may differ slightly
// from the per-element growth sequence; the held counts are identical.
//
//sketch:hotpath
func (s *DenseStore) AddOnes(indexes []int) {
	if len(indexes) == 0 {
		return
	}
	lo, hi := indexes[0], indexes[0]
	for _, i := range indexes[1:] {
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	s.ensure(lo)
	s.ensure(hi)
	counts, offset := s.counts, s.offset
	for _, i := range indexes {
		counts[i-offset]++
	}
	s.total += int64(len(indexes))
	if lo < s.minIdx {
		s.minIdx = lo
	}
	if hi > s.maxIdx {
		s.maxIdx = hi
	}
}

// ensure grows the backing array to include index.
func (s *DenseStore) ensure(index int) {
	if len(s.counts) == 0 {
		s.counts = make([]int64, initialDenseBuckets)
		s.offset = index - initialDenseBuckets/2
		return
	}
	pos := index - s.offset
	if pos >= 0 && pos < len(s.counts) {
		return
	}
	// Grow to cover both the current range and the new index, rounded up
	// to the next chunk. The chunked growth (rather than doubling) keeps
	// the array close to the actually observed index span, matching the
	// reference implementation's space behaviour the paper measures in
	// Sec 4.3: the range grows only logarithmically with the data, so
	// re-allocation stays rare.
	lo, hi := s.offset, s.offset+len(s.counts)-1
	if index < lo {
		lo = index
	}
	if index > hi {
		hi = index
	}
	span := hi - lo + 1
	n := (span + initialDenseBuckets - 1) / initialDenseBuckets * initialDenseBuckets
	grown := make([]int64, n)
	newOffset := lo - (n-span)/2
	copy(grown[s.offset-newOffset:], s.counts)
	s.counts = grown
	s.offset = newOffset
}

// Total implements Store.
func (s *DenseStore) Total() int64 { return s.total }

// IsEmpty implements Store.
func (s *DenseStore) IsEmpty() bool { return s.total == 0 }

// MinIndex implements Store.
func (s *DenseStore) MinIndex() int { return s.minIdx }

// MaxIndex implements Store.
func (s *DenseStore) MaxIndex() int { return s.maxIdx }

// ForEach implements Store.
func (s *DenseStore) ForEach(fn func(index int, count int64) bool) {
	if s.total == 0 {
		return
	}
	for i := s.minIdx; i <= s.maxIdx; i++ {
		c := s.counts[i-s.offset]
		if c != 0 {
			if !fn(i, c) {
				return
			}
		}
	}
}

// NonEmptyBuckets implements Store.
func (s *DenseStore) NonEmptyBuckets() int {
	n := 0
	s.ForEach(func(int, int64) bool { n++; return true })
	return n
}

// NumbersHeld implements Store.
func (s *DenseStore) NumbersHeld() int {
	// The backing array plus offset/min/max/total bookkeeping.
	return len(s.counts) + 4
}

// CollapseCount implements Store.
func (s *DenseStore) CollapseCount() int { return 0 }

// Clone implements Store.
func (s *DenseStore) Clone() Store {
	c := *s
	c.counts = make([]int64, len(s.counts))
	copy(c.counts, s.counts)
	return &c
}

// Reset implements Store.
func (s *DenseStore) Reset() {
	*s = *NewDenseStore()
}

// CollapsingLowestDenseStore bounds the bucket count at MaxBuckets by
// collapsing the lowest-indexed buckets into one when the range would
// exceed the bound — DDSketch's bounded-memory variant (Sec 3.3), which
// sacrifices the accuracy guarantee of the lowest quantiles only.
type CollapsingLowestDenseStore struct {
	DenseStore
	maxBuckets int
	collapses  int
}

// NewCollapsingLowestDenseStore returns a bounded store collapsing its
// lowest buckets when more than maxBuckets distinct indices are needed.
func NewCollapsingLowestDenseStore(maxBuckets int) *CollapsingLowestDenseStore {
	if maxBuckets < 2 {
		maxBuckets = 2
	}
	return &CollapsingLowestDenseStore{DenseStore: *NewDenseStore(), maxBuckets: maxBuckets}
}

// MaxBuckets returns the configured bucket bound.
func (s *CollapsingLowestDenseStore) MaxBuckets() int { return s.maxBuckets }

// Add implements Store.
func (s *CollapsingLowestDenseStore) Add(index int, count int64) {
	if count <= 0 {
		return
	}
	if s.total == 0 {
		s.DenseStore.Add(index, count)
		return
	}
	switch {
	case index > s.maxIdx && index-s.minIdx+1 > s.maxBuckets:
		// New high bucket forces the low end to fold up.
		s.collapseLowestTo(index - s.maxBuckets + 1)
		s.DenseStore.Add(index, count)
	case index < s.minIdx && s.maxIdx-index+1 > s.maxBuckets:
		// Value below the representable range lands in the lowest bucket.
		s.collapses++
		if metrics != nil {
			metrics.Collapses.Inc()
		}
		s.DenseStore.Add(s.maxIdx-s.maxBuckets+1, count)
	default:
		s.DenseStore.Add(index, count)
	}
}

// collapseLowestTo folds every bucket below newMin into bucket newMin.
func (s *CollapsingLowestDenseStore) collapseLowestTo(newMin int) {
	if newMin <= s.minIdx {
		return
	}
	s.collapses++
	if metrics != nil {
		metrics.Collapses.Inc()
	}
	var folded int64
	for i := s.minIdx; i < newMin && i <= s.maxIdx; i++ {
		pos := i - s.offset
		folded += s.counts[pos]
		s.counts[pos] = 0
	}
	if folded > 0 {
		s.ensure(newMin)
		s.counts[newMin-s.offset] += folded
	}
	if newMin > s.minIdx {
		s.minIdx = newMin
	}
	if s.maxIdx < s.minIdx {
		s.maxIdx = s.minIdx
	}
}

// AddOnes shadows the promoted DenseStore fast path: which buckets a
// collapsing store folds depends on the order indices arrive, so bulk
// increments must go through the collapse-aware Add one at a time.
func (s *CollapsingLowestDenseStore) AddOnes(indexes []int) {
	for _, i := range indexes {
		s.Add(i, 1)
	}
}

// CollapseCount implements Store.
func (s *CollapsingLowestDenseStore) CollapseCount() int { return s.collapses }

// Clone implements Store.
func (s *CollapsingLowestDenseStore) Clone() Store {
	c := *s
	c.counts = make([]int64, len(s.counts))
	copy(c.counts, s.counts)
	return &c
}

// Reset implements Store.
func (s *CollapsingLowestDenseStore) Reset() {
	mb := s.maxBuckets
	*s = *NewCollapsingLowestDenseStore(mb)
}

// SparseStore keeps counts in a hash map; memory scales with non-empty
// buckets instead of index range, at the cost of slower iteration.
type SparseStore struct {
	counts map[int]int64
	total  int64
}

// NewSparseStore returns an empty sparse store.
func NewSparseStore() *SparseStore {
	return &SparseStore{counts: make(map[int]int64)}
}

// Add implements Store.
func (s *SparseStore) Add(index int, count int64) {
	if count <= 0 {
		return
	}
	s.counts[index] += count
	s.total += count
}

// Total implements Store.
func (s *SparseStore) Total() int64 { return s.total }

// IsEmpty implements Store.
func (s *SparseStore) IsEmpty() bool { return s.total == 0 }

// MinIndex implements Store.
func (s *SparseStore) MinIndex() int {
	first := true
	minIdx := 0
	for i := range s.counts {
		if first || i < minIdx {
			minIdx = i
			first = false
		}
	}
	return minIdx
}

// MaxIndex implements Store.
func (s *SparseStore) MaxIndex() int {
	first := true
	maxIdx := 0
	for i := range s.counts {
		if first || i > maxIdx {
			maxIdx = i
			first = false
		}
	}
	return maxIdx
}

// ForEach implements Store.
func (s *SparseStore) ForEach(fn func(index int, count int64) bool) {
	keys := make([]int, 0, len(s.counts))
	for i := range s.counts {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		if !fn(i, s.counts[i]) {
			return
		}
	}
}

// NonEmptyBuckets implements Store.
func (s *SparseStore) NonEmptyBuckets() int { return len(s.counts) }

// NumbersHeld implements Store.
func (s *SparseStore) NumbersHeld() int {
	// Key + count + map bookkeeping per entry, matching the paper's
	// three-numbers-per-bucket accounting for map-backed stores.
	return 3*len(s.counts) + 1
}

// CollapseCount implements Store.
func (s *SparseStore) CollapseCount() int { return 0 }

// Clone implements Store.
func (s *SparseStore) Clone() Store {
	c := NewSparseStore()
	c.total = s.total
	for i, v := range s.counts {
		c.counts[i] = v
	}
	return c
}

// Reset implements Store.
func (s *SparseStore) Reset() {
	s.counts = make(map[int]int64)
	s.total = 0
}
