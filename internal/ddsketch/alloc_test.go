package ddsketch

import (
	"testing"
)

// allocInputs returns a deterministic pseudo-random batch in [1, 1000):
// positive so every value is indexable, varied so the store sees a
// realistic index range.
func allocInputs(n int) []float64 {
	xs := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = 1 + float64(state>>11)/float64(1<<53)*999
	}
	return xs
}

// TestMappingIndexAllocs pins the //sketch:hotpath contract on the
// mapping index functions: zero allocations per call. Boxing the
// receiver or a math call that escapes would show up here immediately.
func TestMappingIndexAllocs(t *testing.T) {
	xs := allocInputs(1024)
	exact, err := NewMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	cubic, err := NewCubicMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := NewLinearMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	sink := 0
	for name, index := range map[string]func(float64) int{
		"logarithmic": exact.Index,
		"cubic":       cubic.Index,
		"linear":      linear.Index,
	} {
		avg := testing.AllocsPerRun(100, func() {
			for _, x := range xs {
				sink += index(x)
			}
		})
		if avg > 0 {
			t.Errorf("%s Index allocates %.1f times per 1024 calls, want 0", name, avg)
		}
	}
	_ = sink
}

// TestDenseStoreAddOnesAllocs pins the bulk-increment path: once the
// backing array spans the batch's index range, AddOnes must be pure
// array arithmetic.
func TestDenseStoreAddOnesAllocs(t *testing.T) {
	m, err := NewMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 0, 1024)
	for _, x := range allocInputs(1024) {
		idx = append(idx, m.Index(x))
	}
	s := NewDenseStore()
	s.AddOnes(idx) // warm: grows the array to the index span
	avg := testing.AllocsPerRun(100, func() { s.AddOnes(idx) })
	if avg > 0 {
		t.Errorf("DenseStore.AddOnes allocates %.1f times per batch, want 0", avg)
	}
}

// TestPaginatedStoreAddOnesAllocs pins the buffered-paginated bulk path:
// once the page table spans the batch's index range, AddOnes must be
// pure shift-mask-increment arithmetic.
func TestPaginatedStoreAddOnesAllocs(t *testing.T) {
	m, err := NewMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 0, 1024)
	for _, x := range allocInputs(1024) {
		idx = append(idx, m.Index(x))
	}
	s := NewBufferedPaginatedStore()
	s.AddOnes(idx) // warm: allocates the touched pages
	avg := testing.AllocsPerRun(100, func() { s.AddOnes(idx) })
	if avg > 0 {
		t.Errorf("BufferedPaginatedStore.AddOnes allocates %.1f times per batch, want 0", avg)
	}
}

// TestPaginatedStoreAddAllocs pins the buffered single-insert path: with
// the buffer at capacity and the working pages allocated, a
// buffer-append plus periodic flush must not allocate.
func TestPaginatedStoreAddAllocs(t *testing.T) {
	m, err := NewMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 0, 1024)
	for _, x := range allocInputs(1024) {
		idx = append(idx, m.Index(x))
	}
	s := NewBufferedPaginatedStore()
	for _, i := range idx {
		s.Add(i, 1) // warm: pages allocated, buffer at capacity
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, i := range idx {
			s.Add(i, 1)
		}
	})
	if avg > 0 {
		t.Errorf("BufferedPaginatedStore.Add allocates %.1f times per 1024 inserts, want 0", avg)
	}
}

// TestInsertBatchAllocs pins the sketch-level batch kernel: after the
// scratch slices and the stores have grown to the working range, a
// 1024-value batch must not allocate. One interface box per value
// would read as ~1024 here. Covered for both the dense default and the
// buffered-paginated store.
func TestInsertBatchAllocs(t *testing.T) {
	xs := allocInputs(1024)
	for name, s := range map[string]*Sketch{
		"dense":     New(0.01),
		"paginated": NewPaginated(0.01),
	} {
		for i := 0; i < 8; i++ {
			s.InsertBatch(xs) // warm scratch and store capacity
		}
		avg := testing.AllocsPerRun(100, func() { s.InsertBatch(xs) })
		if avg > 0 {
			t.Errorf("InsertBatch(%s) allocates %.1f times per 1024-value batch, want 0", name, avg)
		}
	}
}
