// Package ddsketch implements DDSketch (Masson, Rim, Lee; VLDB 2019), the
// histogram-based deterministic quantile sketch with a relative-error
// guarantee α: every returned quantile estimate x̂ satisfies
// |x̂ − x| ≤ α·x for the true quantile value x.
//
// A value x > 0 is mapped to bucket ⌈log_γ(x)⌉ with γ = (1+α)/(1−α), so
// bucket i covers (γ^(i−1), γ^i] and the bucket midpoint 2γ^i/(γ+1) is
// within relative distance α of every value in the bucket. The package
// provides the unbounded dense store the paper evaluates, plus the
// collapsing-lowest variant (bounded bucket count, used by the store
// ablation) and a sparse map-backed store.
package ddsketch

import (
	"fmt"
	"math"
)

// Mapping converts between values and bucket indices for a fixed relative
// accuracy α.
type Mapping struct {
	alpha    float64
	gamma    float64
	logGamma float64
}

// NewMapping builds the logarithmic mapping for relative accuracy alpha,
// which must lie in (0, 1).
func NewMapping(alpha float64) (Mapping, error) {
	if !(alpha > 0 && alpha < 1) {
		return Mapping{}, fmt.Errorf("ddsketch: alpha must be in (0,1), got %v", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return Mapping{alpha: alpha, gamma: gamma, logGamma: math.Log(gamma)}, nil
}

// Alpha returns the relative accuracy the mapping was built for.
func (m Mapping) Alpha() float64 { return m.alpha }

// Gamma returns the bucket growth factor γ = (1+α)/(1−α).
func (m Mapping) Gamma() float64 { return m.gamma }

// Index returns the bucket index for a positive value: ⌈log_γ(x)⌉.
//
//sketch:hotpath
func (m Mapping) Index(x float64) int {
	return int(math.Ceil(math.Log(x) / m.logGamma))
}

// Value returns the representative value of bucket i, the midpoint
// 2γ^i/(γ+1) whose relative distance to both bucket edges is below α.
func (m Mapping) Value(i int) float64 {
	return 2 * math.Pow(m.gamma, float64(i)) / (m.gamma + 1)
}

// LowerBound returns the exclusive lower edge γ^(i−1) of bucket i.
func (m Mapping) LowerBound(i int) float64 {
	return math.Pow(m.gamma, float64(i-1))
}

// UpperBound returns the inclusive upper edge γ^i of bucket i.
func (m Mapping) UpperBound(i int) float64 {
	return math.Pow(m.gamma, float64(i))
}

// MinIndexableValue returns the smallest positive value that maps to a
// representable bucket index without underflowing float64. For practical
// α the exponential underflows, so the bound is the smallest positive
// float64 — every positive double is indexable.
func (m Mapping) MinIndexableValue() float64 {
	v := math.Exp(float64(math.MinInt32+1) * m.logGamma)
	if v < math.SmallestNonzeroFloat64 {
		return math.SmallestNonzeroFloat64
	}
	return v
}
