package ddsketch

const (
	// pageLenLog2 sets the page granularity: 32 buckets per page keeps a
	// page at 256 bytes — small enough that a sparse index range wastes
	// little, large enough that dense ranges need few page pointers.
	pageLenLog2 = 5
	pageLen     = 1 << pageLenLog2
	pageMask    = pageLen - 1
	// bufferFlushLen bounds the append-only insert buffer. 512 entries
	// (4 KB) keeps the buffer cache-resident while amortizing the
	// page-walk cost of a flush over many inserts.
	bufferFlushLen = 512
)

// pageIndex returns the page holding bucket i. The arithmetic shift is
// floor division, so negative bucket indices decompose correctly:
// i = (i>>pageLenLog2)*pageLen + (i&pageMask) with 0 ≤ i&pageMask < pageLen.
func pageIndex(i int) int { return i >> pageLenLog2 }

// BufferedPaginatedStore is the reference implementation's
// buffered-paginated store design: single increments append to a small
// insert buffer (no bucket lookup at all on the hot path), and bucket
// counts live in fixed-size dense pages allocated lazily across the used
// index range. Add/AddOnes are O(1) amortized like DenseStore's, but
// memory is proportional to the *touched* pages rather than the full
// index span, which matters for data whose buckets cluster in a few
// separated ranges.
//
// The buffer is an internal staging area only: every observable read
// (ForEach, NonEmptyBuckets, …) flushes it first, so the store is
// indistinguishable from a plain bucket-count map.
type BufferedPaginatedStore struct {
	buffer  []int     // staged single-count bucket indices, unordered
	pages   [][]int64 // pages[p] holds buckets [(minPage+p)·32, …+32); nil = unallocated
	minPage int       // page index of pages[0]; meaningful when len(pages) > 0
	total   int64
	minIdx  int
	maxIdx  int
}

// NewBufferedPaginatedStore returns an empty buffered-paginated store.
func NewBufferedPaginatedStore() *BufferedPaginatedStore {
	return &BufferedPaginatedStore{
		buffer: make([]int, 0, bufferFlushLen),
		minIdx: int(^uint(0)>>1) - 1,
		maxIdx: -(int(^uint(0)>>1) - 1),
	}
}

// page returns the page holding page index p, extending the page table
// and allocating the page as needed.
func (s *BufferedPaginatedStore) page(p int) []int64 {
	switch {
	case len(s.pages) == 0:
		s.pages = make([][]int64, 1, 4)
		s.minPage = p
	case p < s.minPage:
		shift := s.minPage - p
		grown := make([][]int64, len(s.pages)+shift)
		copy(grown[shift:], s.pages)
		s.pages = grown
		s.minPage = p
	case p >= s.minPage+len(s.pages):
		need := p - s.minPage + 1
		if need <= cap(s.pages) {
			s.pages = s.pages[:need]
		} else {
			grown := make([][]int64, need)
			copy(grown, s.pages)
			s.pages = grown
		}
	}
	pg := s.pages[p-s.minPage]
	if pg == nil {
		pg = make([]int64, pageLen)
		s.pages[p-s.minPage] = pg
	}
	return pg
}

// flush drains the insert buffer into the pages.
func (s *BufferedPaginatedStore) flush() {
	for _, i := range s.buffer {
		s.page(pageIndex(i))[i&pageMask]++
	}
	s.buffer = s.buffer[:0]
}

// track extends the observed index range.
func (s *BufferedPaginatedStore) track(index int) {
	if index < s.minIdx {
		s.minIdx = index
	}
	if index > s.maxIdx {
		s.maxIdx = index
	}
}

// Add implements Store. Single increments — the insert path — only
// append to the buffer; multi-counts (merges, deserialization) go to
// the pages directly.
//
//sketch:hotpath
func (s *BufferedPaginatedStore) Add(index int, count int64) {
	if count <= 0 {
		return
	}
	if count == 1 {
		s.buffer = append(s.buffer, index)
		s.total++
		s.track(index)
		if len(s.buffer) >= bufferFlushLen {
			s.flush()
		}
		return
	}
	s.page(pageIndex(index))[index&pageMask] += count
	s.total += count
	s.track(index)
}

// AddOnes implements the batched-insert bulk path: the index range is
// scanned first so the page table is extended at most twice for the
// whole batch, then each increment is two shifts, a mask and an array
// op (the buffer is bypassed — the batch is its own amortization).
//
//sketch:hotpath
func (s *BufferedPaginatedStore) AddOnes(indexes []int) {
	if len(indexes) == 0 {
		return
	}
	lo, hi := indexes[0], indexes[0]
	for _, i := range indexes[1:] {
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	s.page(pageIndex(lo))
	s.page(pageIndex(hi))
	minPage := s.minPage
	pages := s.pages
	for _, i := range indexes {
		pg := pages[(i>>pageLenLog2)-minPage]
		if pg == nil {
			// First touch of an interior page: allocate it. The page table
			// already spans [lo, hi], so the slice header cannot move.
			pg = s.page(i >> pageLenLog2)
		}
		pg[i&pageMask]++
	}
	s.total += int64(len(indexes))
	if lo < s.minIdx {
		s.minIdx = lo
	}
	if hi > s.maxIdx {
		s.maxIdx = hi
	}
}

// Total implements Store.
func (s *BufferedPaginatedStore) Total() int64 { return s.total }

// IsEmpty implements Store.
func (s *BufferedPaginatedStore) IsEmpty() bool { return s.total == 0 }

// MinIndex implements Store.
func (s *BufferedPaginatedStore) MinIndex() int { return s.minIdx }

// MaxIndex implements Store.
func (s *BufferedPaginatedStore) MaxIndex() int { return s.maxIdx }

// ForEach implements Store: the buffer is flushed, then pages are walked
// in ascending order — ascending bucket order by construction.
func (s *BufferedPaginatedStore) ForEach(fn func(index int, count int64) bool) {
	if s.total == 0 {
		return
	}
	s.flush()
	for pi, pg := range s.pages {
		if pg == nil {
			continue
		}
		base := (s.minPage + pi) << pageLenLog2
		for li, c := range pg {
			if c != 0 {
				if !fn(base+li, c) {
					return
				}
			}
		}
	}
}

// NonEmptyBuckets implements Store.
func (s *BufferedPaginatedStore) NonEmptyBuckets() int {
	n := 0
	s.ForEach(func(int, int64) bool { n++; return true })
	return n
}

// NumbersHeld implements Store: buffer slots plus allocated page slots
// plus bookkeeping, in the paper's 8-byte-number accounting.
func (s *BufferedPaginatedStore) NumbersHeld() int {
	n := len(s.buffer) + len(s.pages) + 4
	for _, pg := range s.pages {
		if pg != nil {
			n += pageLen
		}
	}
	return n
}

// CollapseCount implements Store.
func (s *BufferedPaginatedStore) CollapseCount() int { return 0 }

// Clone implements Store.
func (s *BufferedPaginatedStore) Clone() Store {
	c := *s
	c.buffer = make([]int, len(s.buffer), bufferFlushLen)
	copy(c.buffer, s.buffer)
	c.pages = make([][]int64, len(s.pages))
	for i, pg := range s.pages {
		if pg != nil {
			np := make([]int64, pageLen)
			copy(np, pg)
			c.pages[i] = np
		}
	}
	return &c
}

// Reset implements Store, keeping the buffer's capacity.
func (s *BufferedPaginatedStore) Reset() {
	buf := s.buffer[:0]
	*s = *NewBufferedPaginatedStore()
	s.buffer = buf
}
