package ddsketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// FuzzMappingAlphaContract fuzzes the defining guarantee of every index
// mapping: for any representable positive x above the indexable floor,
// the representative value of x's bucket is within α relative error.
// Fuzzing raw float bits reaches exponent boundaries, subnormal
// neighborhoods and mantissa extremes that uniform sampling misses.
func FuzzMappingAlphaContract(f *testing.F) {
	f.Add(uint64(0x3FF0000000000000)) // 1.0
	f.Add(uint64(0x0010000000000000)) // smallest normal
	f.Add(uint64(0x7FEFFFFFFFFFFFFF)) // largest finite
	f.Add(math.Float64bits(math.Pi))
	f.Add(math.Float64bits(1e-300))
	f.Add(math.Float64bits(1e300))
	lm, err1 := NewLogarithmic(0.01)
	cm, err2 := NewCubicMapping(0.01)
	linm, err3 := NewLinearMapping(0.01)
	if err1 != nil || err2 != nil || err3 != nil {
		f.Fatal(err1, err2, err3)
	}
	ms := map[string]IndexMapping{"logarithmic": lm, "cubic": cm, "linear": linm}
	f.Fuzz(func(t *testing.T, bits uint64) {
		x := math.Float64frombits(bits)
		if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return
		}
		// Keep one exponent step above the floor: x at the very boundary
		// may round into the underflow bucket, which is the zero-bucket's
		// job, not the mapping's.
		for name, m := range ms {
			if x < 2*m.MinIndexable() || x > math.MaxFloat64/2 {
				continue
			}
			v := m.Value(m.Index(x))
			if re := math.Abs(v-x) / x; re > m.Alpha()*(1+1e-6) {
				t.Errorf("%s: Value(Index(%x)) = %v, rel err %v > α=%v",
					name, bits, v, re, m.Alpha())
			}
		}
	})
}

// TestCrossVersionRoundTrip pins the compatibility story for sketches
// serialized before the cubic-mapping default: an exact-log, dense-store
// envelope must still decode, merge with its own kind, and be
// convertible (ChangeMapping) into the new default so its data can flow
// into cubic sketches with a compounded — but bounded — error.
func TestCrossVersionRoundTrip(t *testing.T) {
	lm, err := NewLogarithmic(0.01)
	if err != nil {
		t.Fatal(err)
	}
	dense := func() Store { return NewDenseStore() }
	old, err := NewWithMapping(lm, dense)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(23, 29))
	data := make([]float64, 60_000)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64() * 3)
		old.Insert(data[i])
	}
	// The "old" blob: written with the exact-log mapping.
	blob, err := old.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Sketch
	if err := decoded.UnmarshalBinary(blob); err != nil {
		t.Fatalf("old envelope no longer decodes: %v", err)
	}
	if decoded.mapping.Name() != "logarithmic" {
		t.Fatalf("old envelope decoded with mapping %q, want logarithmic", decoded.mapping.Name())
	}
	// Log–log merging still works.
	peer, _ := NewWithMapping(lm, dense)
	for i := 0; i < 5000; i++ {
		x := math.Exp(rng.NormFloat64() * 3)
		data = append(data, x)
		peer.Insert(x)
	}
	if err := decoded.Merge(peer); err != nil {
		t.Fatalf("log-log merge: %v", err)
	}
	// Direct merge into a new-default (cubic) sketch is rejected — the
	// bucket boundaries differ — and ChangeMapping is the bridge.
	fresh := New(0.01)
	if err := fresh.Merge(&decoded); err == nil {
		t.Fatal("cubic sketch silently absorbed log-mapped buckets")
	}
	cm, err := NewCubicMapping(0.01)
	if err != nil {
		t.Fatal(err)
	}
	converted, err := decoded.ChangeMapping(cm)
	if err != nil {
		t.Fatal(err)
	}
	if converted.Count() != decoded.Count() {
		t.Fatalf("conversion lost counts: %d != %d", converted.Count(), decoded.Count())
	}
	for i := 0; i < 5000; i++ {
		x := math.Exp(rng.NormFloat64() * 3)
		data = append(data, x)
		fresh.Insert(x)
	}
	if err := fresh.Merge(converted); err != nil {
		t.Fatalf("merge of converted sketch: %v", err)
	}
	// Re-bucketing compounds the relative error: a value placed with
	// α_old and re-read through α_new lands within
	// α_old + α_new + α_old·α_new of the truth.
	sort.Float64s(data)
	compounded := 0.01 + 0.01 + 0.01*0.01
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		truth := exactQuantile(data, q)
		est, err := fresh.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(truth, est); re > compounded*(1+1e-6) {
			t.Errorf("q=%v: rel err %v > compounded bound %v", q, re, compounded)
		}
	}
}
