package ddsketch

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/sketch"
)

// Sketch is a DDSketch instance. It handles the full real line: positive
// values go to the positive store, negative values to a mirrored negative
// store, and exact zeros (plus positive values too small to index) to a
// dedicated counter, as in the reference implementation.
type Sketch struct {
	mapping   IndexMapping
	positive  Store
	negative  Store
	zeroCnt   int64
	min, max  float64
	storeFn   func() Store
	storeKind byte // which Store the constructor built: affects serde round-trip
	maxBkts   int

	// InsertBatch scratch: bucket indices staged per sign before the
	// dense store's bulk increment. Reused across calls; never
	// serialized.
	posScratch []int
	negScratch []int
}

var _ sketch.Sketch = (*Sketch)(nil)

// Store kinds a constructor can build, recorded so serde reconstructs
// the same store implementation. The byte values are the wire encoding
// (0/1 predate the paginated store, so old envelopes decode unchanged).
const (
	storeKindDense     byte = 0
	storeKindCollapse  byte = 1
	storeKindPaginated byte = 2
)

// New returns a DDSketch with relative accuracy alpha, the cubically
// interpolated index mapping (no log() call per insert; ~1% more buckets
// for the same α guarantee) and an unbounded dense store — the study's
// configuration (α = 0.01, γ = 1.0202) on the fast default paths. Use
// NewWithMapping with NewLogarithmic for the exact mapping. It panics on
// invalid alpha; use NewWithStore for checked construction.
func New(alpha float64) *Sketch {
	s, err := NewWithStore(alpha, func() Store { return NewDenseStore() })
	if err != nil {
		panic(err)
	}
	return s
}

// NewCollapsing returns a DDSketch with relative accuracy alpha and a
// collapsing-lowest dense store bounded at maxBuckets buckets (the
// bounded-memory variant used in the store ablation). It panics on
// invalid alpha; use NewWithStore for checked construction.
func NewCollapsing(alpha float64, maxBuckets int) *Sketch {
	s, err := NewWithStore(alpha, func() Store { return NewCollapsingLowestDenseStore(maxBuckets) })
	if err != nil {
		panic(err)
	}
	s.storeKind = storeKindCollapse
	s.maxBkts = maxBuckets
	return s
}

// NewPaginated returns a DDSketch with the buffered-paginated store:
// O(1) amortized inserts like the dense store, but memory proportional
// to the used index range (allocated page by page) instead of the full
// span. It panics on invalid alpha.
func NewPaginated(alpha float64) *Sketch {
	s, err := NewWithStore(alpha, func() Store { return NewBufferedPaginatedStore() })
	if err != nil {
		panic(err)
	}
	s.storeKind = storeKindPaginated
	return s
}

// NewWithStore returns a DDSketch with the default cubically
// interpolated mapping, using storeFn to construct its positive and
// negative stores.
func NewWithStore(alpha float64, storeFn func() Store) (*Sketch, error) {
	m, err := NewCubic(alpha)
	if err != nil {
		return nil, err
	}
	return NewWithMapping(m, storeFn)
}

// NewFromState assembles a sketch from externally accumulated state:
// the bridge the concurrent layer (internal/concurrent) uses to
// materialize a point-in-time snapshot of its atomic bin counters as a
// plain, queryable DDSketch. The stores are adopted, not copied — the
// caller must hand over exclusive ownership. A non-empty sketch
// (store counts or zeros present) requires ordered bounds minV ≤ maxV;
// an empty one must carry the canonical (+Inf, −Inf) sentinels.
func NewFromState(m IndexMapping, positive, negative Store, zeroCnt int64, minV, maxV float64) (*Sketch, error) {
	if m == nil {
		return nil, fmt.Errorf("ddsketch: nil mapping")
	}
	if positive == nil || negative == nil {
		return nil, fmt.Errorf("ddsketch: nil store")
	}
	if zeroCnt < 0 {
		return nil, fmt.Errorf("ddsketch: negative zero count %d", zeroCnt)
	}
	s := &Sketch{
		mapping:  m,
		positive: positive,
		negative: negative,
		zeroCnt:  zeroCnt,
		storeFn:  func() Store { return NewDenseStore() },
		min:      minV,
		max:      maxV,
	}
	if s.Count() > 0 {
		if !(minV <= maxV) {
			return nil, fmt.Errorf("ddsketch: unordered bounds min=%v max=%v", minV, maxV)
		}
	} else if !math.IsInf(minV, 1) || !math.IsInf(maxV, -1) {
		return nil, fmt.Errorf("ddsketch: empty sketch needs (+Inf, -Inf) bounds, got (%v, %v)", minV, maxV)
	}
	return s, nil
}

// NewWithMapping returns a DDSketch with an arbitrary index mapping
// (logarithmic, cubic or linear interpolation) and store constructor.
func NewWithMapping(m IndexMapping, storeFn func() Store) (*Sketch, error) {
	if m == nil {
		return nil, fmt.Errorf("ddsketch: nil mapping")
	}
	return &Sketch{
		mapping:  m,
		positive: storeFn(),
		negative: storeFn(),
		storeFn:  storeFn,
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}, nil
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "ddsketch" }

// Alpha returns the configured relative accuracy.
func (s *Sketch) Alpha() float64 { return s.mapping.Alpha() }

// Gamma returns the bucket growth factor.
func (s *Sketch) Gamma() float64 { return s.mapping.Gamma() }

// Insert implements sketch.Sketch. NaN values are ignored.
func (s *Sketch) Insert(x float64) { s.InsertN(x, 1) }

// InsertN implements sketch.BulkInserter: n occurrences of x in O(1).
func (s *Sketch) InsertN(x float64, n uint64) {
	if math.IsNaN(x) || n == 0 {
		return
	}
	if metrics != nil {
		metrics.Inserts.Add(int64(n))
	}
	switch {
	case x > 0 && x >= s.mapping.MinIndexable():
		s.positive.Add(s.mapping.Index(x), int64(n))
	case x < 0 && -x >= s.mapping.MinIndexable():
		s.negative.Add(s.mapping.Index(-x), int64(n))
	default:
		s.zeroCnt += int64(n)
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 {
	return uint64(s.positive.Total() + s.negative.Total() + s.zeroCnt)
}

// totals returns the grand total and the negative store's share with a
// single Total() call per store (Count() would consult the negative
// store twice per query once negTotal is also needed).
func (s *Sketch) totals() (total, negTotal int64) {
	negTotal = s.negative.Total()
	total = s.positive.Total() + negTotal + s.zeroCnt
	return total, negTotal
}

// Quantile implements sketch.Sketch. The estimate for a quantile landing
// in positive bucket i is the midpoint 2γ^i/(γ+1), guaranteeing relative
// error at most α for values covered by the unbounded store.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	total, negTotal := s.totals()
	if total == 0 {
		return 0, sketch.ErrEmpty
	}
	return s.quantileFromTotals(q, total, negTotal), nil
}

// quantileFromTotals answers one valid q given precomputed store totals.
func (s *Sketch) quantileFromTotals(q float64, total, negTotal int64) float64 {
	// Rank of the q-quantile, 1-based: ⌈qN⌉.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	switch {
	case rank <= negTotal:
		// Negative values in descending magnitude order: the smallest
		// (most negative) value lives in the negative store's highest
		// bucket index.
		want := negTotal - rank // ranks from the top of the negative store
		var cum int64
		est := s.min
		s.negative.ForEach(func(i int, c int64) bool {
			cum += c
			if cum > want {
				est = -s.mapping.Value(i)
				return false
			}
			return true
		})
		return s.clampToRange(est)
	case rank <= negTotal+s.zeroCnt:
		return 0
	default:
		want := rank - negTotal - s.zeroCnt
		var cum int64
		est := s.max
		s.positive.ForEach(func(i int, c int64) bool {
			cum += c
			if cum >= want {
				est = s.mapping.Value(i)
				return false
			}
			return true
		})
		return s.clampToRange(est)
	}
}

// storeTarget is one batched rank target: want is the cumulative count
// that resolves it during a store scan, pos its slot in the output.
type storeTarget struct {
	want int64
	pos  int
}

// QuantileAll implements sketch.MultiQuantiler: every target rank is
// mapped to its store (negative / zero / positive) and each store is
// scanned once, resolving its targets in ascending cumulative order,
// instead of one ForEach walk per quantile.
func (s *Sketch) QuantileAll(qs []float64) ([]float64, error) {
	total, negTotal := s.totals()
	if err := sketch.ValidateQuantiles(qs, total == 0); err != nil {
		return nil, err
	}
	out := make([]float64, len(qs))
	var negT, posT []storeTarget
	for i, q := range qs {
		rank := int64(math.Ceil(q * float64(total)))
		if rank < 1 {
			rank = 1
		}
		if rank > total {
			rank = total
		}
		switch {
		case rank <= negTotal:
			negT = append(negT, storeTarget{negTotal - rank, i})
		case rank <= negTotal+s.zeroCnt:
			out[i] = 0
		default:
			posT = append(posT, storeTarget{rank - negTotal - s.zeroCnt, i})
		}
	}
	byWant := func(a, b storeTarget) int {
		switch {
		case a.want < b.want:
			return -1
		case a.want > b.want:
			return 1
		default:
			return 0
		}
	}
	if len(negT) > 0 {
		slices.SortFunc(negT, byWant)
		k := 0
		var cum int64
		s.negative.ForEach(func(i int, c int64) bool {
			cum += c
			for k < len(negT) && cum > negT[k].want {
				out[negT[k].pos] = s.clampToRange(-s.mapping.Value(i))
				k++
			}
			return k < len(negT)
		})
		for ; k < len(negT); k++ {
			out[negT[k].pos] = s.clampToRange(s.min)
		}
	}
	if len(posT) > 0 {
		slices.SortFunc(posT, byWant)
		k := 0
		var cum int64
		s.positive.ForEach(func(i int, c int64) bool {
			cum += c
			for k < len(posT) && cum >= posT[k].want {
				out[posT[k].pos] = s.clampToRange(s.mapping.Value(i))
				k++
			}
			return k < len(posT)
		})
		for ; k < len(posT); k++ {
			out[posT[k].pos] = s.clampToRange(s.max)
		}
	}
	return out, nil
}

// clampToRange keeps estimates within the observed [min, max] so bucket
// midpoints can never fall outside the data range.
func (s *Sketch) clampToRange(x float64) float64 {
	if x < s.min {
		return s.min
	}
	if x > s.max {
		return s.max
	}
	return x
}

// Rank implements sketch.Sketch: the estimated fraction of values ≤ x.
func (s *Sketch) Rank(x float64) (float64, error) {
	total := int64(s.Count())
	if total == 0 {
		return 0, sketch.ErrEmpty
	}
	var le int64
	if x >= 0 {
		le += s.negative.Total()
		le += s.zeroCnt
		if x > 0 {
			xi := s.mapping.Index(x)
			s.positive.ForEach(func(i int, c int64) bool {
				if i > xi {
					return false
				}
				le += c
				return true
			})
		}
	} else {
		xi := s.mapping.Index(-x)
		s.negative.ForEach(func(i int, c int64) bool {
			if i >= xi {
				le += c
			}
			return true
		})
	}
	return float64(le) / float64(total), nil
}

// Merge implements sketch.Sketch. Sketches must share the same γ (and
// hence α); bucket counts in the same range are added (Sec 3.3).
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into ddsketch", sketch.ErrIncompatible, other.Name())
	}
	if o.mapping.Name() != s.mapping.Name() ||
		math.Float64bits(o.mapping.Gamma()) != math.Float64bits(s.mapping.Gamma()) {
		return fmt.Errorf("%w: mapping mismatch %s/%v vs %s/%v", sketch.ErrIncompatible,
			s.mapping.Name(), s.mapping.Gamma(), o.mapping.Name(), o.mapping.Gamma())
	}
	mergedCount := s.Count() + o.Count()
	o.positive.ForEach(func(i int, c int64) bool {
		s.positive.Add(i, c)
		return true
	})
	o.negative.ForEach(func(i int, c int64) bool {
		s.negative.Add(i, c)
		return true
	})
	s.zeroCnt += o.zeroCnt
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	if metrics != nil {
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
	s.assertCount("merge", mergedCount)
	return nil
}

// ChangeMapping returns a copy of the sketch re-bucketed under a new
// index mapping: every bucket's representative value is re-indexed with
// the target mapping. This is the bridge between sketches serialized
// before the cubic-by-default switch (exact logarithmic mapping) and
// new-default sketches: Merge deliberately rejects mixed mappings, so
// convert one side first. The relative error guarantee of the result
// compounds to at most α_old + α_new + α_old·α_new, because each
// retained value moved by ≤ α_old before being re-bucketed within
// α_new.
func (s *Sketch) ChangeMapping(m IndexMapping) (*Sketch, error) {
	if m == nil {
		return nil, fmt.Errorf("ddsketch: nil mapping")
	}
	ns, err := NewWithMapping(m, s.storeFn)
	if err != nil {
		return nil, err
	}
	ns.storeKind = s.storeKind
	ns.maxBkts = s.maxBkts
	minIndexable := m.MinIndexable()
	rebucket := func(src, dst Store) {
		src.ForEach(func(i int, c int64) bool {
			v := s.mapping.Value(i)
			if v >= minIndexable {
				dst.Add(m.Index(v), c)
			} else {
				ns.zeroCnt += c
			}
			return true
		})
	}
	rebucket(s.positive, ns.positive)
	rebucket(s.negative, ns.negative)
	ns.zeroCnt += s.zeroCnt
	ns.min, ns.max = s.min, s.max
	return ns, nil
}

// MemoryBytes implements sketch.Sketch with the paper's numeric-size
// accounting: 8 bytes per retained number.
func (s *Sketch) MemoryBytes() int {
	numbers := s.positive.NumbersHeld() + s.negative.NumbersHeld() + 3 // zero count, min, max
	return 8 * numbers
}

// Footprint implements sketch.Footprinter: the structural store bytes
// plus the InsertBatch staging scratch the sketch retains across calls.
func (s *Sketch) Footprint() int {
	return s.MemoryBytes() + 8*(cap(s.posScratch)+cap(s.negScratch))
}

// minDegradeBuckets is the per-store floor below which Degrade refuses
// to collapse further: with so few buckets left a collapse frees almost
// nothing and the store is already a coarse histogram.
const minDegradeBuckets = 4

// Degrade implements sketch.Degrader: collapse the lowest-value half of
// each store's non-empty buckets into the lowest surviving bucket —
// lowest indices of the positive store, highest (most negative) indices
// of the negative store — rebuilding the stores so dense spans and
// paginated pages actually shrink. The mapping is untouched, so the
// degraded sketch merges with any sketch of the same γ, and values
// above the collapsed region keep the full α guarantee; like the
// reference CollapsingLowestDenseStore, only the lowest quantiles'
// relative-error guarantee is forfeited (estimates there remain clamped
// to the exact [min, max]).
func (s *Sketch) Degrade() (int, error) {
	before := s.Footprint()
	count := s.Count()
	collapsed := false
	if st, did := s.collapseExtreme(s.positive, true); did {
		s.positive = st
		collapsed = true
	}
	if st, did := s.collapseExtreme(s.negative, false); did {
		s.negative = st
		collapsed = true
	}
	if !collapsed {
		return 0, sketch.ErrNotDegradable
	}
	s.posScratch, s.negScratch = nil, nil
	s.assertCount("degrade", count)
	freed := before - s.Footprint()
	if freed < 0 {
		freed = 0
	}
	return freed, nil
}

// collapseExtreme rebuilds st with the half of its buckets holding the
// most extreme low values folded into the lowest surviving bucket. low
// selects which end is extreme: the low-index end (positive store) or
// the high-index end (negative store, where higher index = more
// negative value).
func (s *Sketch) collapseExtreme(st Store, low bool) (Store, bool) {
	nb := st.NonEmptyBuckets()
	if nb < minDegradeBuckets {
		return st, false
	}
	drop := nb / 2 // buckets folded away
	ns := s.storeFn()
	if low {
		// Fold the `drop` lowest buckets into the lowest survivor.
		seen := 0
		var boundary int
		st.ForEach(func(i int, c int64) bool {
			if seen < drop {
				seen++
				boundary = i // grows until the last folded bucket
				return true
			}
			if seen == drop {
				seen++
				boundary = i // the lowest surviving bucket
			}
			return false
		})
		st.ForEach(func(i int, c int64) bool {
			if i < boundary {
				ns.Add(boundary, c)
			} else {
				ns.Add(i, c)
			}
			return true
		})
	} else {
		// Fold the `drop` highest buckets into the highest survivor.
		keep := nb - drop
		seen := 0
		boundary := 0
		st.ForEach(func(i int, c int64) bool {
			seen++
			boundary = i
			return seen < keep // stops at the highest surviving bucket
		})
		st.ForEach(func(i int, c int64) bool {
			if i > boundary {
				ns.Add(boundary, c)
			} else {
				ns.Add(i, c)
			}
			return true
		})
	}
	return ns, true
}

// AccuracyBound implements sketch.AccuracyBounder: the mapping's
// relative accuracy α, which store collapses do not change — Degrade
// instead narrows the value range over which α holds (quantiles below
// the collapsed boundary lose the guarantee), so budget-degraded
// DDSketch windows are flagged by their degradation count rather than
// a larger bound.
func (s *Sketch) AccuracyBound() float64 { return s.mapping.Alpha() }

// NonEmptyBuckets reports the number of non-empty buckets across both
// stores (the statistic the paper tracks in Sec 4.3).
func (s *Sketch) NonEmptyBuckets() int {
	return s.positive.NonEmptyBuckets() + s.negative.NonEmptyBuckets()
}

// CollapseCount reports store collapses (0 with unbounded stores).
func (s *Sketch) CollapseCount() int {
	return s.positive.CollapseCount() + s.negative.CollapseCount()
}

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() {
	s.positive.Reset()
	s.negative.Reset()
	s.zeroCnt = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(64 + 16*(s.positive.NonEmptyBuckets()+s.negative.NonEmptyBuckets()))
	w.Header(sketch.TagDDSketch)
	w.Byte(s.storeKind)
	if s.storeKind == storeKindCollapse {
		w.U32(uint32(s.maxBkts))
	} else {
		w.U32(0)
	}
	w.Byte(mappingCode(s.mapping.Name()))
	w.F64(s.mapping.Alpha())
	w.I64(s.zeroCnt)
	w.F64(s.min)
	w.F64(s.max)
	writeStore := func(st Store) {
		w.U32(uint32(st.NonEmptyBuckets()))
		st.ForEach(func(i int, c int64) bool {
			w.I64(int64(i))
			w.I64(c)
			return true
		})
	}
	writeStore(s.positive)
	writeStore(s.negative)
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if err := r.Header(sketch.TagDDSketch); err != nil {
		return err
	}
	storeKind := r.Byte()
	maxBkts := int(r.U32())
	mapCode := r.Byte()
	alpha := r.F64()
	zero := r.I64()
	minV := r.F64()
	maxV := r.F64()
	if r.Err() != nil {
		return r.Err()
	}
	if zero < 0 || math.IsNaN(minV) || math.IsNaN(maxV) {
		return sketch.ErrCorrupt
	}
	var ns *Sketch
	if !(alpha > 0 && alpha < 1) {
		return sketch.ErrCorrupt
	}
	m, err := mappingFromCode(mapCode, alpha)
	if err != nil {
		return sketch.ErrCorrupt
	}
	var storeFn func() Store
	switch storeKind {
	case storeKindDense:
		storeFn = func() Store { return NewDenseStore() }
	case storeKindCollapse:
		if maxBkts < 2 || maxBkts > 1<<24 {
			return sketch.ErrCorrupt
		}
		storeFn = func() Store { return NewCollapsingLowestDenseStore(maxBkts) }
	case storeKindPaginated:
		storeFn = func() Store { return NewBufferedPaginatedStore() }
	default:
		return sketch.ErrCorrupt
	}
	ns, err = NewWithMapping(m, storeFn)
	if err != nil {
		return sketch.ErrCorrupt
	}
	ns.storeKind = storeKind
	if storeKind == storeKindCollapse {
		ns.maxBkts = maxBkts
	}
	ns.zeroCnt = zero
	ns.min = minV
	ns.max = maxV
	readStore := func(st Store) error {
		n := int(r.U32())
		for i := 0; i < n; i++ {
			idx := r.I64()
			c := r.I64()
			if r.Err() != nil {
				return r.Err()
			}
			// Indices beyond ±2^26 cannot arise from float64 inputs at any
			// valid α and would make the dense store allocate its whole
			// span; reject them as corruption.
			if c < 0 || idx > 1<<26 || idx < -(1<<26) {
				return sketch.ErrCorrupt
			}
			st.Add(int(idx), c)
		}
		return nil
	}
	if err := readStore(ns.positive); err != nil {
		return err
	}
	if err := readStore(ns.negative); err != nil {
		return err
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	// Structural validation: a non-empty sketch needs ordered bounds.
	if ns.Count() > 0 && !(ns.min <= ns.max) {
		return sketch.ErrCorrupt
	}
	ns.assertInvariants("unmarshal")
	*s = *ns
	return nil
}

// mappingCode encodes a mapping name for serialization.
func mappingCode(name string) byte {
	switch name {
	case "logarithmic":
		return 0
	case "cubic":
		return 1
	case "linear":
		return 2
	default:
		return 0xFF
	}
}

// mappingFromCode reconstructs a mapping from its serialized code.
func mappingFromCode(code byte, alpha float64) (IndexMapping, error) {
	switch code {
	case 0:
		return NewLogarithmic(alpha)
	case 1:
		return NewCubicMapping(alpha)
	case 2:
		return NewLinearMapping(alpha)
	default:
		return nil, fmt.Errorf("ddsketch: unknown mapping code %d", code)
	}
}
