package ddsketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestSketchWithSparseStore(t *testing.T) {
	s, err := NewWithStore(0.01, func() Store { return NewSparseStore() })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64() * 2)
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		truth := exactQuantile(data, q)
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(truth, est); re > 0.01*(1+1e-9) {
			t.Errorf("q=%v: rel err %v with sparse store", q, re)
		}
	}
	// Sparse store memory scales with non-empty buckets only.
	if s.MemoryBytes() > 8*(3*s.NonEmptyBuckets()+20) {
		t.Errorf("sparse memory %d for %d buckets", s.MemoryBytes(), s.NonEmptyBuckets())
	}
}

func TestSparseStoreReset(t *testing.T) {
	st := NewSparseStore()
	st.Add(1, 5)
	st.Reset()
	if !st.IsEmpty() || st.NonEmptyBuckets() != 0 {
		t.Error("reset left state")
	}
}

func TestDenseStoreCloneIndependence(t *testing.T) {
	st := NewDenseStore()
	st.Add(10, 3)
	cl := st.Clone()
	st.Add(20, 4)
	if cl.Total() != 3 {
		t.Errorf("clone total %d, want 3", cl.Total())
	}
	if st.Total() != 7 {
		t.Errorf("original total %d, want 7", st.Total())
	}
}

func TestCollapsingCloneAndReset(t *testing.T) {
	st := NewCollapsingLowestDenseStore(16)
	for i := 0; i < 100; i++ {
		st.Add(i, 1)
	}
	if st.CollapseCount() == 0 {
		t.Fatal("expected collapses")
	}
	cl := st.Clone().(*CollapsingLowestDenseStore)
	if cl.MaxBuckets() != 16 || cl.Total() != st.Total() {
		t.Error("clone mismatch")
	}
	st.Reset()
	if !st.IsEmpty() || st.CollapseCount() != 0 {
		t.Error("reset left state")
	}
	if st.MaxBuckets() != 16 {
		t.Error("reset lost configuration")
	}
}

func TestNegativeRankQueries(t *testing.T) {
	s := New(0.01)
	for i := 1; i <= 1000; i++ {
		s.Insert(-float64(i))
		s.Insert(float64(i))
	}
	// Rank of a negative value: fraction ≤ -500 is ≈ 500/2000 = 0.25.
	r, err := s.Rank(-500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.25) > 0.02 {
		t.Errorf("Rank(-500) = %v, want ≈ 0.25", r)
	}
	r, _ = s.Rank(0)
	if math.Abs(r-0.5) > 0.02 {
		t.Errorf("Rank(0) = %v, want ≈ 0.5", r)
	}
	// Quantile deep in the negative range.
	est, err := s.Quantile(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(-800, est); re > 0.02 {
		t.Errorf("q=0.1 = %v, want ≈ -800", est)
	}
}

func TestZeroOnlyStream(t *testing.T) {
	s := New(0.01)
	for i := 0; i < 100; i++ {
		s.Insert(0)
	}
	v, err := s.Quantile(0.5)
	if err != nil || v != 0 {
		t.Errorf("all-zero median = %v, %v", v, err)
	}
	r, err := s.Rank(0)
	if err != nil || r != 1 {
		t.Errorf("Rank(0) = %v, %v", r, err)
	}
}

func TestMappingBounds(t *testing.T) {
	m, _ := NewMapping(0.01)
	// LowerBound/UpperBound bracket Value.
	for _, i := range []int{-100, -1, 0, 1, 100} {
		lo, hi, v := m.LowerBound(i), m.UpperBound(i), m.Value(i)
		if !(v > lo && v <= hi) {
			t.Errorf("bucket %d: value %v outside (%v, %v]", i, v, lo, hi)
		}
	}
	if m.MinIndexableValue() <= 0 {
		t.Error("MinIndexableValue must be positive")
	}
}
