package ddsketch

import (
	"math"

	"repro/internal/sketch"
)

var (
	_ sketch.BatchInserter  = (*Sketch)(nil)
	_ sketch.MultiQuantiler = (*Sketch)(nil)
)

// InsertBatch implements sketch.BatchInserter with a tight
// key-computation loop: the mapping and indexability threshold are
// hoisted, bucket indices are staged in per-sign scratch slices, and an
// unbounded dense store absorbs each sign's indices in one bulk
// increment (Store.AddOnes) that grows the backing array at most once.
// Bucket counts are order-independent, so staging cannot change the
// resulting distribution state. Collapsing (and other non-dense) stores
// fall back to per-element Add in stream order, because which buckets a
// collapsing store folds depends on the order indices arrive.
//
//sketch:hotpath
func (s *Sketch) InsertBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	m := s.mapping
	minIndexable := m.MinIndexable()
	posDense, posOK := s.positive.(*DenseStore)
	negDense, negOK := s.negative.(*DenseStore)
	pos := s.posScratch[:0]
	neg := s.negScratch[:0]
	minV, maxV := s.min, s.max
	var zero int64
	var nans int
	for _, x := range xs {
		if math.IsNaN(x) {
			nans++
			continue
		}
		switch {
		case x > 0 && x >= minIndexable:
			if posOK {
				pos = append(pos, m.Index(x))
			} else {
				s.positive.Add(m.Index(x), 1)
			}
		case x < 0 && -x >= minIndexable:
			if negOK {
				neg = append(neg, m.Index(-x))
			} else {
				s.negative.Add(m.Index(-x), 1)
			}
		default:
			zero++
		}
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	if posOK {
		posDense.AddOnes(pos)
	}
	if negOK {
		negDense.AddOnes(neg)
	}
	s.posScratch = pos[:0]
	s.negScratch = neg[:0]
	s.zeroCnt += zero
	s.min, s.max = minV, maxV
	if metrics != nil {
		metrics.Inserts.Add(int64(len(xs) - nans))
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
}
