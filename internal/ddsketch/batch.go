package ddsketch

import (
	"math"

	"repro/internal/fastlog"
	"repro/internal/sketch"
)

var (
	_ sketch.BatchInserter  = (*Sketch)(nil)
	_ sketch.MultiQuantiler = (*Sketch)(nil)
)

// bulkAdder is the store bulk-increment fast path InsertBatch drains
// its staged indices through. All package stores except SparseStore
// implement it; the collapsing store's AddOnes applies elements in
// order through its collapse-aware Add, so staging per sign preserves
// its collapse decisions exactly (they depend only on that store's own
// arrival order, which staging keeps).
type bulkAdder interface {
	AddOnes(indexes []int)
}

// InsertBatch implements sketch.BatchInserter with a tight
// key-computation loop: the mapping is devirtualized by a one-time type
// switch so the per-value cost of the default cubic mapping is a
// handful of float multiply-adds (fastlog.Log2Cubic) with no interface
// call, bucket indices are staged in per-sign scratch slices, and the
// store absorbs each sign's indices in one bulk increment
// (Store.AddOnes) that grows its backing storage at most once per
// batch. Bucket counts are order-independent and staging preserves
// per-store arrival order, so the resulting state is identical to
// per-element insertion.
//
//sketch:hotpath
func (s *Sketch) InsertBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	pos := s.posScratch[:0]
	neg := s.negScratch[:0]
	minV, maxV := s.min, s.max
	var zero int64
	var nans int
	switch m := s.mapping.(type) {
	case Cubic:
		mult := m.multiplier
		for _, x := range xs {
			if math.IsNaN(x) {
				nans++
				continue
			}
			switch {
			case x >= fastlog.MinIndexable:
				pos = append(pos, int(math.Ceil(fastlog.Log2Cubic(x)*mult)))
			case x < 0 && -x >= fastlog.MinIndexable:
				neg = append(neg, int(math.Ceil(fastlog.Log2Cubic(-x)*mult)))
			default:
				zero++
			}
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
		}
	case Linear:
		mult := m.multiplier
		for _, x := range xs {
			if math.IsNaN(x) {
				nans++
				continue
			}
			switch {
			case x >= fastlog.MinIndexable:
				pos = append(pos, int(math.Ceil(fastlog.Log2Linear(x)*mult)))
			case x < 0 && -x >= fastlog.MinIndexable:
				neg = append(neg, int(math.Ceil(fastlog.Log2Linear(-x)*mult)))
			default:
				zero++
			}
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
		}
	case Logarithmic:
		logGamma := m.logGamma
		minIndexable := m.MinIndexable()
		for _, x := range xs {
			if math.IsNaN(x) {
				nans++
				continue
			}
			switch {
			case x > 0 && x >= minIndexable:
				pos = append(pos, int(math.Ceil(math.Log(x)/logGamma)))
			case x < 0 && -x >= minIndexable:
				neg = append(neg, int(math.Ceil(math.Log(-x)/logGamma)))
			default:
				zero++
			}
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
		}
	default:
		minIndexable := m.MinIndexable()
		for _, x := range xs {
			if math.IsNaN(x) {
				nans++
				continue
			}
			switch {
			case x > 0 && x >= minIndexable:
				pos = append(pos, m.Index(x))
			case x < 0 && -x >= minIndexable:
				neg = append(neg, m.Index(-x))
			default:
				zero++
			}
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
		}
	}
	if b, ok := s.positive.(bulkAdder); ok {
		b.AddOnes(pos)
	} else {
		for _, i := range pos {
			s.positive.Add(i, 1)
		}
	}
	if b, ok := s.negative.(bulkAdder); ok {
		b.AddOnes(neg)
	} else {
		for _, i := range neg {
			s.negative.Add(i, 1)
		}
	}
	s.posScratch = pos[:0]
	s.negScratch = neg[:0]
	s.zeroCnt += zero
	s.min, s.max = minV, maxV
	if metrics != nil {
		metrics.Inserts.Add(int64(len(xs) - nans))
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
}
