package ddsketch

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

// bucketList reads a store's contents through ForEach.
func bucketList(s Store) (idx []int, cnt []int64) {
	s.ForEach(func(i int, c int64) bool {
		idx = append(idx, i)
		cnt = append(cnt, c)
		return true
	})
	return
}

func storesEqual(t *testing.T, tag string, got, want Store) {
	t.Helper()
	if got.Total() != want.Total() {
		t.Fatalf("%s: total %d != %d", tag, got.Total(), want.Total())
	}
	if got.IsEmpty() != want.IsEmpty() {
		t.Fatalf("%s: IsEmpty %v != %v", tag, got.IsEmpty(), want.IsEmpty())
	}
	if !want.IsEmpty() {
		if got.MinIndex() != want.MinIndex() || got.MaxIndex() != want.MaxIndex() {
			t.Fatalf("%s: range [%d,%d] != [%d,%d]", tag,
				got.MinIndex(), got.MaxIndex(), want.MinIndex(), want.MaxIndex())
		}
	}
	gi, gc := bucketList(got)
	wi, wc := bucketList(want)
	if len(gi) != len(wi) {
		t.Fatalf("%s: %d non-empty buckets != %d", tag, len(gi), len(wi))
	}
	for k := range gi {
		if gi[k] != wi[k] || gc[k] != wc[k] {
			t.Fatalf("%s: bucket %d: (%d,%d) != (%d,%d)", tag, k, gi[k], gc[k], wi[k], wc[k])
		}
	}
	if got.NonEmptyBuckets() != want.NonEmptyBuckets() {
		t.Fatalf("%s: NonEmptyBuckets %d != %d", tag, got.NonEmptyBuckets(), want.NonEmptyBuckets())
	}
}

// The buffered-paginated store must be observationally identical to the
// dense store under any interleaving of single adds, bulk adds, and
// multi-count adds — including reads mid-stream that force buffer
// flushes at arbitrary points.
func TestPaginatedStoreMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	pag := NewBufferedPaginatedStore()
	den := NewDenseStore()
	randIdx := func() int {
		// Cluster around two separated centers, with occasional negatives,
		// to exercise page-table extension in both directions.
		base := []int{-300, 0, 4000}[rng.IntN(3)]
		return base + rng.IntN(64) - 32
	}
	for step := 0; step < 4000; step++ {
		switch rng.IntN(10) {
		case 0, 1, 2, 3, 4, 5: // single insert (buffered path)
			i := randIdx()
			pag.Add(i, 1)
			den.Add(i, 1)
		case 6: // multi-count (direct page path)
			i, c := randIdx(), int64(rng.IntN(100)+2)
			pag.Add(i, c)
			den.Add(i, c)
		case 7: // bulk batch
			n := rng.IntN(200)
			batch := make([]int, n)
			for k := range batch {
				batch[k] = randIdx()
			}
			pag.AddOnes(batch)
			den.AddOnes(batch)
		case 8: // read mid-stream: forces a flush
			storesEqual(t, "mid-stream", pag, den)
		case 9: // non-positive counts are ignored
			pag.Add(randIdx(), 0)
			den.Add(randIdx(), -1)
		}
	}
	storesEqual(t, "final", pag, den)
}

// ForEach must visit buckets in ascending index order and honor early
// stop, even with entries still staged in the insert buffer.
func TestPaginatedStoreForEachOrder(t *testing.T) {
	s := NewBufferedPaginatedStore()
	for _, i := range []int{70, -3, 500, 0, -64, 31, 32} {
		s.Add(i, 1)
	}
	prev := math.MinInt32
	s.ForEach(func(i int, c int64) bool {
		if i <= prev {
			t.Fatalf("ForEach out of order: %d after %d", i, prev)
		}
		if c != 1 {
			t.Fatalf("bucket %d count %d, want 1", i, c)
		}
		prev = i
		return true
	})
	visits := 0
	s.ForEach(func(int, int64) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("early-stop ForEach visited %d buckets, want 1", visits)
	}
}

func TestPaginatedStoreCloneReset(t *testing.T) {
	s := NewBufferedPaginatedStore()
	for i := 0; i < 100; i++ {
		s.Add(i%7, 1)
	}
	s.Add(1000, 5)
	c := s.Clone()
	// Mutating the clone must not touch the original, and vice versa —
	// including buffered entries.
	c.Add(42, 3)
	s.Add(-9, 2)
	if c.Total() != 108 || s.Total() != 107 {
		t.Fatalf("clone aliasing: totals %d, %d", c.Total(), s.Total())
	}
	ci, _ := bucketList(c)
	for _, i := range ci {
		if i == -9 {
			t.Fatal("clone sees original's post-clone insert")
		}
	}
	s.Reset()
	if !s.IsEmpty() || s.Total() != 0 || s.NonEmptyBuckets() != 0 {
		t.Fatal("reset store not empty")
	}
	s.Add(3, 1)
	if s.MinIndex() != 3 || s.MaxIndex() != 3 {
		t.Fatal("reset store tracks stale index range")
	}
}

// Memory accounting: a store holding two distant clusters must pay for
// the touched pages only, not the whole index span like DenseStore.
func TestPaginatedStoreNumbersHeldSparse(t *testing.T) {
	pag := NewBufferedPaginatedStore()
	den := NewDenseStore()
	for _, i := range []int{0, 1, 2, 100_000, 100_001} {
		pag.Add(i, 2) // count 2: lands in pages, not the buffer
		den.Add(i, 2)
	}
	if ph, dh := pag.NumbersHeld(), den.NumbersHeld(); ph*10 > dh {
		t.Fatalf("paginated holds %d numbers, dense %d; expected ≥10x saving on sparse clusters", ph, dh)
	}
}

// A paginated-store sketch must round-trip through serde with its store
// kind, and the decoded copy must keep answering and merging.
func TestPaginatedSketchSerde(t *testing.T) {
	s := NewPaginated(0.01)
	rng := rand.New(rand.NewPCG(17, 19))
	for i := 0; i < 50_000; i++ {
		s.Insert(1 / math.Pow(1-rng.Float64(), 1.1))
	}
	s.Insert(0)
	s.Insert(-3.5)
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.positive.(*BufferedPaginatedStore); !ok {
		t.Fatalf("decoded store is %T, want *BufferedPaginatedStore", d.positive)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.99, 1} {
		a, err1 := s.Quantile(q)
		b, err2 := d.Quantile(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("q=%v: %v != %v after round trip", q, a, b)
		}
	}
	// Round trip is byte-stable.
	blob2, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-marshal not byte-identical")
	}
	// The decoded sketch merges with a same-configuration live sketch.
	o := NewPaginated(0.01)
	o.Insert(12.5)
	before := d.Count()
	if err := d.Merge(o); err != nil {
		t.Fatal(err)
	}
	if d.Count() != before+1 {
		t.Fatalf("merge count %d, want %d", d.Count(), before+1)
	}
}

// Truncated paginated-sketch envelopes must be rejected, and a failed
// decode must leave the receiver untouched.
func TestPaginatedSketchTruncation(t *testing.T) {
	s := NewPaginated(0.01)
	for i := 0; i < 1000; i++ {
		s.Insert(float64(i%97) + 0.5)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		var d Sketch
		if err := d.UnmarshalBinary(blob[:n]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", n, len(blob))
		}
		if d.positive != nil || d.mapping != nil {
			t.Fatalf("failed decode at %d bytes mutated receiver", n)
		}
	}
}

// FuzzPaginatedSketchDecode hardens the paginated store's wire format:
// arbitrary input must either fail cleanly or produce a sketch whose
// re-marshal round-trips.
func FuzzPaginatedSketchDecode(f *testing.F) {
	seed := NewPaginated(0.01)
	for i := 0; i < 300; i++ {
		seed.Insert(math.Exp(float64(i%40) - 20))
	}
	blob, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	empty, _ := NewPaginated(0.01).MarshalBinary()
	f.Add(empty)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Sketch
		if err := d.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted blob fails to re-marshal: %v", err)
		}
		var d2 Sketch
		if err := d2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshaled blob fails to decode: %v", err)
		}
	})
}
