// Package quantiles is the public API of this repository: streaming
// quantile sketches with a uniform interface, reproducing the five
// algorithms evaluated in "An Experimental Analysis of Quantile Sketches
// over Data Streams" (EDBT 2023) — KLL Sketch, Moments Sketch, DDSketch,
// UDDSketch and ReqSketch — together with the study's recommended
// configurations.
//
// All sketches implement the Sketch interface: single-pass Insert,
// Quantile/Rank queries, lossless Merge for distributed aggregation, and
// binary serialization. Pick by workload:
//
//   - DDSketch: best all-round runtime with a hard relative-error
//     guarantee α on every quantile; the study's default recommendation.
//   - UDDSketch: the best accuracy of the five (tighter-than-requested α
//     until its collapse budget is spent), at slower inserts and merges.
//   - KLL: additive rank-error guarantee; estimates are actual stream
//     values; strong on non-skewed data.
//   - ReqSketch: multiplicative rank-error guarantee biased toward the
//     upper (HRA) or lower (LRA) quantiles; the sharpest p99 estimates.
//   - Moments: ~150 bytes of state and merges an order of magnitude
//     faster than anything else; accuracy depends on the data resembling
//     a smooth distribution.
//
// Quickstart:
//
//	sk := quantiles.NewDDSketch(0.01) // ≤1% relative error
//	for _, v := range latencies {
//		sk.Insert(v)
//	}
//	p99, err := sk.Quantile(0.99)
//
// The internal packages additionally provide the paper's full benchmark
// harness (internal/harness, cmd/quantbench), a simulated stream
// processing engine with event-time windows and late-data semantics
// (internal/stream), and the workload generators (internal/datagen).
package quantiles

import (
	"repro/internal/concurrent"
	"repro/internal/ddsketch"
	"repro/internal/gk"
	"repro/internal/kll"
	"repro/internal/kllpm"
	"repro/internal/moments"
	"repro/internal/req"
	"repro/internal/sketch"
	"repro/internal/tdigest"
	"repro/internal/uddsketch"
)

// Sketch is the uniform interface implemented by every quantile sketch.
// See internal/sketch for the full contract.
type Sketch = sketch.Sketch

// Builder constructs fresh, identically configured sketches (for
// per-window or per-partition use).
type Builder = sketch.Builder

// Common errors, re-exported for errors.Is checks.
var (
	// ErrEmpty is returned when querying a sketch with no data.
	ErrEmpty = sketch.ErrEmpty
	// ErrInvalidQuantile is returned for q outside (0, 1].
	ErrInvalidQuantile = sketch.ErrInvalidQuantile
	// ErrIncompatible is returned when merging mismatched sketches.
	ErrIncompatible = sketch.ErrIncompatible
	// ErrCorrupt is returned when deserializing malformed bytes.
	ErrCorrupt = sketch.ErrCorrupt
)

// MomentsTransform selects the input transform of a Moments sketch.
type MomentsTransform = moments.Transform

// Moments sketch input transforms. Use MomentsLog for positive data
// spanning many orders of magnitude, MomentsArcsinh for signed data.
const (
	MomentsNone    = moments.TransformNone
	MomentsLog     = moments.TransformLog
	MomentsArcsinh = moments.TransformArcsinh
)

// NewDDSketch returns a DDSketch with relative accuracy alpha (0 < alpha
// < 1) and an unbounded dense store. Every estimate x̂ of a true quantile
// value x satisfies |x̂−x| ≤ alpha·|x|. The default index mapping is the
// cubically-interpolated one (no log() call per insert; ~1% more buckets
// than exact); use NewDDSketchWithMapping with NewLogarithmicMapping for
// the exact mapping. Panics on invalid alpha.
func NewDDSketch(alpha float64) *ddsketch.Sketch { return ddsketch.New(alpha) }

// NewDDSketchCollapsing returns a DDSketch bounded at maxBuckets buckets;
// when the range outgrows the budget, the lowest buckets collapse and
// only low-quantile accuracy degrades.
func NewDDSketchCollapsing(alpha float64, maxBuckets int) *ddsketch.Sketch {
	return ddsketch.NewCollapsing(alpha, maxBuckets)
}

// NewDDSketchPaginated returns a DDSketch over the buffered-paginated
// store: same O(1) amortized inserts as the dense store, with memory
// proportional to the touched bucket-index pages rather than the full
// index span — the better default when bucket ranges cluster.
func NewDDSketchPaginated(alpha float64) *ddsketch.Sketch { return ddsketch.NewPaginated(alpha) }

// NewUDDSketch returns a UDDSketch with initial accuracy alpha0 and a
// bucket budget; when the budget is exhausted all bucket pairs collapse
// uniformly and the guarantee degrades to 2α/(1+α²) per collapse.
func NewUDDSketch(alpha0 float64, maxBuckets int) (*uddsketch.Sketch, error) {
	return uddsketch.NewChecked(alpha0, maxBuckets)
}

// NewUDDSketchWithBudget returns a UDDSketch that still guarantees
// alphaK after numCollapses−1 collapses (the study's configuration is
// alphaK=0.01, maxBuckets=1024, numCollapses=12).
func NewUDDSketchWithBudget(alphaK float64, maxBuckets, numCollapses int) (*uddsketch.Sketch, error) {
	return uddsketch.NewWithBudget(alphaK, maxBuckets, numCollapses)
}

// NewKLL returns a KLL sketch with max compactor size k (the study uses
// 350 for ≈0.97% expected rank error).
func NewKLL(k int) *kll.Sketch { return kll.New(k) }

// NewKLLWithSeed is NewKLL with explicit compaction-randomness seeding.
func NewKLLWithSeed(k int, seed uint64) *kll.Sketch { return kll.NewWithSeed(k, seed) }

// NewReqSketch returns a ReqSketch with section size k (the study uses
// 30). hra selects high-rank-accuracy mode (sharp upper quantiles);
// otherwise low ranks are favoured.
func NewReqSketch(k int, hra bool) *req.Sketch { return req.New(k, hra) }

// NewReqSketchWithSeed is NewReqSketch with explicit seeding.
func NewReqSketchWithSeed(k int, hra bool, seed uint64) *req.Sketch {
	return req.NewWithSeed(k, hra, seed)
}

// NewMoments returns a Moments sketch holding k power sums (the study
// uses 12; more than ~15 is numerically unstable).
func NewMoments(k int) *moments.Sketch { return moments.New(k) }

// NewMomentsWithTransform is NewMoments with an input transform applied
// before accumulation (estimates are mapped back automatically).
func NewMomentsWithTransform(k int, tr MomentsTransform) *moments.Sketch {
	return moments.NewWithTransform(k, tr)
}

// MultiQuantiler is implemented by sketches that answer a whole set of
// quantile queries in one pass over their state. All five study sketches
// implement it; Quantiles uses it automatically.
type MultiQuantiler = sketch.MultiQuantiler

// Quantiles evaluates sk at each q in qs. When sk implements
// MultiQuantiler the batch kernel answers all quantiles in a single pass
// over the sketch state; results are bit-identical to per-q Quantile
// calls either way.
func Quantiles(sk Sketch, qs []float64) ([]float64, error) { return sketch.Quantiles(sk, qs) }

// InsertAll inserts every value of xs into sk.
func InsertAll(sk Sketch, xs []float64) { sketch.InsertAll(sk, xs) }

// IndexMapping is DDSketch's pluggable value→bucket mapping (see
// NewDDSketchWithMapping).
type IndexMapping = ddsketch.IndexMapping

// NewLogarithmicMapping returns DDSketch's exact log_γ mapping: fewest
// buckets, one log() call per insert.
func NewLogarithmicMapping(alpha float64) (IndexMapping, error) {
	return ddsketch.NewLogarithmic(alpha)
}

// NewCubicMapping returns DDSketch's cubically-interpolated mapping —
// the default of NewDDSketch: ~1% more buckets, no transcendental call
// per insert (≈2x faster indexing).
func NewCubicMapping(alpha float64) (IndexMapping, error) {
	return ddsketch.NewCubicMapping(alpha)
}

// NewLinearMapping returns DDSketch's linearly-interpolated mapping:
// the cheapest indexing at ~44% more buckets.
func NewLinearMapping(alpha float64) (IndexMapping, error) {
	return ddsketch.NewLinearMapping(alpha)
}

// NewDDSketchWithMapping returns a DDSketch over an unbounded dense
// store using the given index mapping.
func NewDDSketchWithMapping(m IndexMapping) (*ddsketch.Sketch, error) {
	return ddsketch.NewWithMapping(m, func() ddsketch.Store { return ddsketch.NewDenseStore() })
}

// NewTDigest returns a t-digest with compression δ (tail-accurate
// clustering; no hard error bound — see the study's Sec 5.2.4 caveats).
func NewTDigest(compression float64) *tdigest.Sketch { return tdigest.New(compression) }

// NewGK returns a Greenwald-Khanna summary with additive rank error eps
// (the classic deterministic baseline; merges degrade its bound).
func NewGK(eps float64) *gk.Sketch { return gk.New(eps) }

// NewKLLPlusMinus returns a KLL± sketch: KLL extended with deletions
// (Zhao et al.). Its error guarantee scales with the total operation
// count (inserts + deletes), and its footprint is twice plain KLL's.
func NewKLLPlusMinus(k int) *kllpm.Sketch { return kllpm.New(k) }

// InsertRepeated adds n occurrences of x to sk, using the O(1) weighted
// path for sketches that support it (DDSketch, UDDSketch, Moments, HDR,
// t-digest) and a loop otherwise.
func InsertRepeated(sk Sketch, x float64, n uint64) { sketch.InsertRepeated(sk, x, n) }

// NewMomentsFull returns the full Moments Sketch variant that maintains
// standard AND log power sums and solves them jointly — the original
// design, handling heavy-tailed positive data without a manual
// transform. Twice the (still tiny) state of NewMoments.
func NewMomentsFull(k int) *moments.FullSketch { return moments.NewFull(k) }

// Quantiler is the read-only query side of a sketch — what a
// concurrent snapshot exposes.
type Quantiler = sketch.Quantiler

// ConcurrentSketch is a sketch ingesting from multiple goroutines at
// once: each writer goroutine owns a Writer handle (buffered, no
// shared-state touches until handoff) and any goroutine may take a
// non-blocking Snapshot that trails the writers by at most
// NumWriters()×BufferSize() values. See internal/concurrent and
// DESIGN.md §14.
type ConcurrentSketch = concurrent.Shared

// ConcurrentWriter is one goroutine's insert handle of a
// ConcurrentSketch.
type ConcurrentWriter = concurrent.Writer

// NewConcurrentKLL returns a KLL sketch shared by writers goroutines,
// each buffering bufSize values per handoff (1024 when bufSize <= 0).
// Handoffs publish immutable sketch versions by compare-and-swap.
func NewConcurrentKLL(k, writers, bufSize int) *concurrent.SharedKLL {
	return concurrent.NewKLL(k, writers, bufSize)
}

// NewConcurrentDDSketch returns a DDSketch with relative accuracy
// alpha shared by writers goroutines, each buffering bufSize values
// per handoff (1024 when bufSize <= 0). Handoffs aggregate into atomic
// bucket counters, wait-free per bucket.
func NewConcurrentDDSketch(alpha float64, writers, bufSize int) (*concurrent.SharedDDSketch, error) {
	return concurrent.NewDDSketch(alpha, writers, bufSize)
}
