// Benchmarks for the insert-path dimensions the hot-path overhaul
// introduced: the index-mapping family (exact log vs the interpolated
// cubic/linear mappings) and the store layout (dense array vs
// buffered-paginated). scripts/bench.sh runs these against the recorded
// pre-overhaul baseline (results/bench_seed_insert.txt, captured with
// the exact-log mapping as the only option and the dense store as the
// only unbounded layout) and emits BENCH_insert.json.
package quantiles_test

import (
	"testing"

	"repro/internal/ddsketch"
	"repro/internal/sketch"
	"repro/internal/uddsketch"
)

// BenchmarkInsertMapping isolates the mapping cost: same sketch, same
// dense store, same Pareto stream, only the value→bucket index function
// differs. Reported per event over 256-value batches (the stream
// engine's chunk granularity).
func BenchmarkInsertMapping(b *testing.B) {
	const chunk = 256
	vals := paretoValues(1<<20, 11)
	dense := func() ddsketch.Store { return ddsketch.NewDenseStore() }
	for _, tc := range []struct {
		name    string
		mapping func(float64) (ddsketch.IndexMapping, error)
	}{
		{"logarithmic", func(a float64) (ddsketch.IndexMapping, error) { return ddsketch.NewLogarithmic(a) }},
		{"cubic", ddsketch.NewCubicMapping},
		{"linear", ddsketch.NewLinearMapping},
	} {
		m, err := tc.mapping(0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			sk, err := ddsketch.NewWithMapping(m, dense)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for n := 0; n < b.N; n += chunk {
				start := n & (1<<20 - 1)
				m := chunk
				if start+m > 1<<20 {
					m = 1<<20 - start
				}
				sk.InsertBatch(vals[start : start+m])
			}
		})
	}
}

// BenchmarkInsertStore isolates the store cost under the default cubic
// mapping: dense array vs buffered-paginated, batch and scalar paths.
func BenchmarkInsertStore(b *testing.B) {
	const chunk = 256
	vals := paretoValues(1<<20, 11)
	builders := map[string]func() *ddsketch.Sketch{
		"dense":     func() *ddsketch.Sketch { return ddsketch.New(0.01) },
		"paginated": func() *ddsketch.Sketch { return ddsketch.NewPaginated(0.01) },
	}
	for _, name := range []string{"dense", "paginated"} {
		builder := builders[name]
		b.Run(name+"/batch", func(b *testing.B) {
			sk := builder()
			b.ResetTimer()
			for n := 0; n < b.N; n += chunk {
				start := n & (1<<20 - 1)
				m := chunk
				if start+m > 1<<20 {
					m = 1<<20 - start
				}
				sk.InsertBatch(vals[start : start+m])
			}
		})
		b.Run(name+"/scalar", func(b *testing.B) {
			sk := builder()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Insert(vals[i&(1<<20-1)])
			}
		})
	}
}

// BenchmarkInsertIndexer isolates UDDSketch's indexer cost: the
// bit-trick cubic indexer (default) vs the retained exact-log indexer,
// exercised through the batch kernel a collapse-free budget.
func BenchmarkInsertIndexer(b *testing.B) {
	const chunk = 256
	vals := paretoValues(1<<20, 11)
	run := func(b *testing.B, sk sketch.BatchInserter) {
		for n := 0; n < b.N; n += chunk {
			start := n & (1<<20 - 1)
			m := chunk
			if start+m > 1<<20 {
				m = 1<<20 - start
			}
			sk.InsertBatch(vals[start : start+m])
		}
	}
	b.Run("cubic", func(b *testing.B) {
		sk, err := uddsketch.NewChecked(0.01, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, sk)
	})
	b.Run("logarithmic", func(b *testing.B) {
		sk, err := uddsketch.NewChecked(0.01, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		sk.UseLegacyLogIndexer()
		b.ResetTimer()
		run(b, sk)
	})
}
