#!/usr/bin/env sh
# Full verification chain: build, vet, repo-specific lint, tests,
# invariant-armed tests, and the race detector over the concurrent
# engine. Run from anywhere inside the repository.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/sketchlint ./...
go test ./...
go test -tags invariants ./internal/...
go test -race ./internal/stream ./internal/harness
# Smoke-run the perf-gate benchmarks (fixed iteration count: checks
# they still execute, not their timing — scripts/bench.sh does that).
go test -run '^$' -bench 'BenchmarkInsertBatch|BenchmarkStreamThroughput' -benchtime 100x .
go test -run '^$' -bench 'BenchmarkQuantileAll' -benchtime 100x .
go test -run '^$' -bench 'BenchmarkAccuracyEval' -benchtime 1x .
