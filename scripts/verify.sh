#!/usr/bin/env bash
# Full verification chain: build, vet, repo-specific lint, tests,
# invariant-armed tests, the race detector over the concurrent engine,
# benchmark smoke runs, and a live scrape of the quantbench metrics
# endpoint. Run from anywhere inside the repository.
#
# Every step is a named gate: on failure the script prints exactly which
# gate tripped and stops there.
set -euo pipefail

cd "$(dirname "$0")/.."

gate() {
	local name="$1"
	shift
	echo "verify.sh: gate ${name}: $*"
	if ! "$@"; then
		echo "verify.sh: FAILED gate: ${name}" >&2
		exit 1
	fi
}

# gofmt_clean fails (listing the offenders) when any tracked Go file,
# fixtures included, is not gofmt-formatted.
gofmt_clean() {
	local out
	out="$(gofmt -l .)"
	if [ -n "$out" ]; then
		echo "gofmt must be run on:" >&2
		echo "$out" >&2
		return 1
	fi
}

# metrics_smoke boots quantbench with the HTTP observability endpoint
# and scrapes /metrics once — the flag wiring, mux and Prometheus
# rendering all have to work for the grep to succeed. Port 0 lets the
# kernel pick a free port (parallel CI jobs must not collide on a fixed
# one); quantbench prints the bound address on stderr and the poll
# below parses it from the log.
metrics_smoke() {
	local bin log addr
	bin="$(mktemp -t quantbench.XXXXXX)"
	log="$(mktemp -t quantbench.log.XXXXXX)"
	go build -o "$bin" ./cmd/quantbench
	# -mem-budget arms the governor so the budget counters are exercised,
	# not just rendered.
	"$bin" -run table3 -scale 0.02 -quiet -metrics -mem-budget 262144 \
		-http "127.0.0.1:0" -linger 30s >/dev/null 2>"$log" &
	local pid=$!
	local ok=0 body
	for _ in $(seq 1 50); do
		addr="$(sed -n 's#^quantbench: serving metrics on http://\([^/]*\)/metrics$#\1#p' "$log" | head -n 1)"
		if [ -n "$addr" ] && body="$(curl -sf "http://${addr}/metrics")" &&
			grep -q '^quantstream_engine_generated_total' <<<"$body" &&
			grep -q '^quantstream_engine_budget_bytes' <<<"$body" &&
			grep -q '^quantstream_engine_degradations_total' <<<"$body" &&
			grep -q '^quantstream_engine_checkpoint_retries_total' <<<"$body"; then
			ok=1
			break
		fi
		sleep 0.2
	done
	kill "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
	rm -f "$bin" "$log"
	[ "$ok" = 1 ]
}

gate build go build ./...
gate gofmt gofmt_clean
gate vet go vet ./...
gate sketchlint go run ./cmd/sketchlint ./...
# The cross-function and hot-path rules also run as individual gates so
# a failure names the broken contract directly in CI output.
gate sketchlint-purity go run ./cmd/sketchlint -q -rules purity ./...
gate sketchlint-atomic-mix go run ./cmd/sketchlint -q -rules atomic-mix ./...
gate sketchlint-recover-swallow go run ./cmd/sketchlint -q -rules recover-swallow ./...
gate sketchlint-hotpath-alloc go run ./cmd/sketchlint -q -rules hotpath-alloc ./...
gate sketchlint-suppressions go run ./cmd/sketchlint -q -rules unused-suppression ./...
gate tests go test ./...
# The //sketch:hotpath annotations are backed by AllocsPerRun
# regression tests; run them by name so an allocation regression is
# called out as its own gate.
gate hotpath-allocs go test -run 'Allocs' ./internal/kll ./internal/req \
	./internal/ddsketch ./internal/uddsketch ./internal/moments \
	./internal/fastlog ./internal/stream ./internal/concurrent
gate invariant-tests go test -tags invariants ./internal/...
gate race go test -race ./internal/stream ./internal/harness
# Crash-recovery / corruption matrix under the race detector: injected
# worker panics at every worker×partition shape, corrupt and truncated
# checkpoints, duplicate batch delivery, stalls, the generic-engine
# recovery paths, the checkpoint envelope/store suite, and the
# random-kill soak — recovered output must stay bit-identical.
gate chaos go test -race \
	-run 'CrashRecovery|Recovery|Resume|Corrupt|Fault|Duplicate|Stall|Checkpoint|Envelope|Snapshot|Store' \
	./internal/stream ./internal/checkpoint ./internal/faultinject ./internal/harness .
# Shared-sketch concurrency under the race detector: the relaxation
# property test, the epoch/CAS handoff suite, the engine integration
# tests and the multi-writer/multi-reader soak in the root package.
gate concurrent go test -race -run 'Concurrent|Relaxation|Shared|Epoch|Snapshot|Writer' \
	./internal/concurrent ./internal/stream .
# Sliding-window pane sharing under the race detector: pane-merged
# windows must be bit-identical to recompute-from-scratch references
# (serial and parallel), decay must be metamorphic at λ=0, pane state
# must survive crash recovery, and ScaleCount must be deterministic.
gate pane go test -race \
	-run 'Pane|Sliding|Decay|ScaleCount|WeightedQuantiles|TumblingSlide' \
	./internal/stream ./internal/sketch ./internal/stats ./internal/harness
# Memory-budget governor and fault-hardened checkpoint I/O under the
# race detector: the budget-never-exceeded property, graceful
# degradation ladders on every sketch, retry/backoff over transient
# store faults, and the flaky-store soak in the root package.
gate budget go test -race \
	-run 'Budget|Degrade|Footprint|Retry|Transient|Shed|Evict|AccuracyBound' \
	./internal/budget ./internal/checkpoint ./internal/faultinject \
	./internal/kll ./internal/req ./internal/ddsketch ./internal/uddsketch \
	./internal/moments ./internal/stream ./internal/concurrent ./internal/harness .
# Smoke-run the perf-gate benchmarks (fixed iteration count: checks
# they still execute, not their timing — scripts/bench.sh does that).
gate bench-smoke-stream go test -run '^$' -bench 'BenchmarkInsertBatch|BenchmarkStreamThroughput' -benchtime 100x .
gate bench-smoke-query go test -run '^$' -bench 'BenchmarkQuantileAll' -benchtime 100x .
gate bench-smoke-insert go test -run '^$' -bench 'BenchmarkInsertMapping|BenchmarkInsertStore|BenchmarkInsertIndexer' -benchtime 100x .
gate bench-smoke-accuracy go test -run '^$' -bench 'BenchmarkAccuracyEval' -benchtime 1x .
gate bench-smoke-concurrent go test -run '^$' -bench 'BenchmarkConcurrentInsert' -benchtime 100x .
gate bench-smoke-pane go test -run '^$' -bench 'BenchmarkSlidingThroughput' -benchtime 100x .
gate bench-smoke-budget go test -run '^$' -bench 'BenchmarkBudgetOverhead' -benchtime 100x .
gate metrics-endpoint metrics_smoke

echo "verify.sh: all gates passed"
