#!/usr/bin/env sh
# Stream/insert performance gate: run the batched-insert and stream
# throughput benchmarks and compare them in BENCH_stream.json against
# the recorded pre-optimization baseline
# (results/bench_seed_stream.txt, captured on the seed engine: boxing
# container/heap event queue, per-element scalar inserts).
#
# BENCHTIME overrides the per-benchmark time budget (default 1s).
set -eux

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
current=results/bench_stream_current.txt

go test -run '^$' -bench 'BenchmarkInsertBatch|BenchmarkStreamThroughput' \
	-benchmem -benchtime "$BENCHTIME" . | tee "$current"

go run ./cmd/benchjson \
	-baseline results/bench_seed_stream.txt \
	-current "$current" \
	-compare 'BenchmarkStreamThroughput/no-delay=BenchmarkStreamThroughput/no-delay/w=4' \
	-compare 'BenchmarkStreamThroughput/exp-delay=BenchmarkStreamThroughput/exp-delay/w=4' \
	-compare 'BenchmarkStreamThroughput/no-delay=BenchmarkStreamThroughput/no-delay/w=1' \
	-compare 'BenchmarkStreamThroughput/exp-delay=BenchmarkStreamThroughput/exp-delay/w=1' \
	-compare 'BenchmarkInsert/kll=BenchmarkInsertBatch/kll/batch' \
	-compare 'BenchmarkInsert/req=BenchmarkInsertBatch/req/batch' \
	-compare 'BenchmarkInsert/ddsketch=BenchmarkInsertBatch/ddsketch/batch' \
	-compare 'BenchmarkInsert/uddsketch=BenchmarkInsertBatch/uddsketch/batch' \
	-compare 'BenchmarkInsert/moments=BenchmarkInsertBatch/moments/batch' \
	-out BENCH_stream.json

cat BENCH_stream.json
