#!/usr/bin/env bash
# Performance gates:
#  - stream/insert: batched-insert and stream throughput benchmarks vs
#    the recorded pre-optimization baseline
#    (results/bench_seed_stream.txt, captured on the seed engine: boxing
#    container/heap event queue, per-element scalar inserts) →
#    BENCH_stream.json
#  - query: multi-quantile batch kernels and parallel accuracy
#    evaluation vs the pre-kernel baseline
#    (results/bench_seed_query.txt, captured with QuantileAll falling
#    back to the per-q scalar loop and sequential window evaluation) →
#    BENCH_query.json
#  - insert: index-mapping family (exact log vs interpolated
#    cubic/linear), UDDSketch indexer kind, and store layout (dense vs
#    buffered-paginated) vs results/bench_seed_insert.txt; the
#    comparisons pair each legacy dimension (logarithmic mapping/indexer,
#    dense store) against its fast-path counterpart → BENCH_insert.json
#  - concurrent: shared-sketch ingestion. Self-comparison (no recorded
#    baseline): the mutex-guarded single-sketch architecture
#    (locked/w=N) is benchmarked in the same run and paired against the
#    per-writer-buffer concurrent path at equal writer count, plus
#    w=1 vs w=ncpu scaling rows → BENCH_concurrent.json. Note the
#    scaling rows only move on multi-core runners; the locked-vs-
#    concurrent pairs show the design win on any machine.
#  - pane: sliding-window pane sharing. Self-comparison: the generic
#    engine recomputing every overlapping window (each event inserted
#    into ~16 open sketches at slide = window/16) against the
#    pane-sharing engine (one insert per event, windows assembled by
#    merging panes), with a hard >= 3x speedup floor → BENCH_pane.json
#  - budget: memory-budget governor overhead. Self-comparison: the
#    disabled path (MemoryBudget 0) against a slack budget that tracks
#    footprints on cadence but never degrades, with a >= 0.98x floor
#    (the governor may cost at most 2% when not binding) →
#    BENCH_budget.json
#
# Each step is a named gate: on failure the script prints exactly which
# gate tripped and stops there.
#
# BENCHTIME overrides the per-benchmark time budget (default 1s).
set -euo pipefail

cd "$(dirname "$0")/.."

gate() {
	local name="$1"
	shift
	echo "bench.sh: gate ${name}: $*"
	if ! "$@"; then
		echo "bench.sh: FAILED gate: ${name}" >&2
		exit 1
	fi
}

BENCHTIME="${BENCHTIME:-1s}"
current=results/bench_stream_current.txt

bench_stream() {
	go test -run '^$' -bench 'BenchmarkInsertBatch|BenchmarkStreamThroughput' \
		-benchmem -benchtime "$BENCHTIME" . | tee "$current"
}

compare_stream() {
	go run ./cmd/benchjson \
		-baseline results/bench_seed_stream.txt \
		-current "$current" \
		-compare 'BenchmarkStreamThroughput/no-delay=BenchmarkStreamThroughput/no-delay/w=4' \
		-compare 'BenchmarkStreamThroughput/exp-delay=BenchmarkStreamThroughput/exp-delay/w=4' \
		-compare 'BenchmarkStreamThroughput/no-delay=BenchmarkStreamThroughput/no-delay/w=1' \
		-compare 'BenchmarkStreamThroughput/exp-delay=BenchmarkStreamThroughput/exp-delay/w=1' \
		-compare 'BenchmarkInsert/kll=BenchmarkInsertBatch/kll/batch' \
		-compare 'BenchmarkInsert/req=BenchmarkInsertBatch/req/batch' \
		-compare 'BenchmarkInsert/ddsketch=BenchmarkInsertBatch/ddsketch/batch' \
		-compare 'BenchmarkInsert/uddsketch=BenchmarkInsertBatch/uddsketch/batch' \
		-compare 'BenchmarkInsert/moments=BenchmarkInsertBatch/moments/batch' \
		-out BENCH_stream.json
}

gate stream-benchmarks bench_stream
gate stream-compare compare_stream
cat BENCH_stream.json

query_current=results/bench_query_current.txt

bench_query() {
	go test -run '^$' -bench 'BenchmarkQuantileAll|BenchmarkAccuracyEval' \
		-benchmem -benchtime "$BENCHTIME" . | tee "$query_current"
}

compare_query() {
	go run ./cmd/benchjson \
		-baseline results/bench_seed_query.txt \
		-current "$query_current" \
		-compare 'BenchmarkQuantileAll/kll/scalar=BenchmarkQuantileAll/kll/batch' \
		-compare 'BenchmarkQuantileAll/req/scalar=BenchmarkQuantileAll/req/batch' \
		-compare 'BenchmarkQuantileAll/ddsketch/scalar=BenchmarkQuantileAll/ddsketch/batch' \
		-compare 'BenchmarkQuantileAll/uddsketch/scalar=BenchmarkQuantileAll/uddsketch/batch' \
		-compare 'BenchmarkQuantileAll/moments/scalar=BenchmarkQuantileAll/moments/batch' \
		-compare 'BenchmarkAccuracyEval/w=1=BenchmarkAccuracyEval/w=4' \
		-out BENCH_query.json
}

gate query-benchmarks bench_query
gate query-compare compare_query
cat BENCH_query.json

insert_current=results/bench_insert_current.txt

bench_insert() {
	go test -run '^$' -bench 'BenchmarkInsertMapping|BenchmarkInsertStore|BenchmarkInsertIndexer' \
		-benchmem -benchtime "$BENCHTIME" . | tee "$insert_current"
}

compare_insert() {
	go run ./cmd/benchjson \
		-baseline results/bench_seed_insert.txt \
		-current "$insert_current" \
		-compare 'BenchmarkInsertMapping/logarithmic=BenchmarkInsertMapping/cubic' \
		-compare 'BenchmarkInsertMapping/logarithmic=BenchmarkInsertMapping/linear' \
		-compare 'BenchmarkInsertIndexer/logarithmic=BenchmarkInsertIndexer/cubic' \
		-compare 'BenchmarkInsertStore/dense/batch=BenchmarkInsertStore/paginated/batch' \
		-compare 'BenchmarkInsertStore/dense/scalar=BenchmarkInsertStore/paginated/scalar' \
		-out BENCH_insert.json
}

gate insert-benchmarks bench_insert
gate insert-compare compare_insert
cat BENCH_insert.json

concurrent_current=results/bench_concurrent_current.txt

bench_concurrent() {
	go test -run '^$' -bench 'BenchmarkConcurrentInsert' \
		-benchmem -benchtime "$BENCHTIME" . | tee "$concurrent_current"
}

compare_concurrent() {
	go run ./cmd/benchjson \
		-current "$concurrent_current" \
		-compare 'BenchmarkConcurrentInsert/kll/locked/w=4=BenchmarkConcurrentInsert/kll/w=4' \
		-compare 'BenchmarkConcurrentInsert/ddsketch/locked/w=4=BenchmarkConcurrentInsert/ddsketch/w=4' \
		-compare 'BenchmarkConcurrentInsert/kll/locked/w=1=BenchmarkConcurrentInsert/kll/w=4' \
		-compare 'BenchmarkConcurrentInsert/ddsketch/locked/w=1=BenchmarkConcurrentInsert/ddsketch/w=4' \
		-compare 'BenchmarkConcurrentInsert/kll/w=1=BenchmarkConcurrentInsert/kll/w=ncpu' \
		-compare 'BenchmarkConcurrentInsert/ddsketch/w=1=BenchmarkConcurrentInsert/ddsketch/w=ncpu' \
		-out BENCH_concurrent.json
}

gate concurrent-benchmarks bench_concurrent
gate concurrent-compare compare_concurrent
cat BENCH_concurrent.json

pane_current=results/bench_pane_current.txt

bench_pane() {
	go test -run '^$' -bench 'BenchmarkSlidingThroughput' \
		-benchmem -benchtime "$BENCHTIME" . | tee "$pane_current"
}

compare_pane() {
	go run ./cmd/benchjson \
		-current "$pane_current" \
		-compare 'BenchmarkSlidingThroughput/recompute=BenchmarkSlidingThroughput/pane' \
		-out BENCH_pane.json
}

# The pane win must be structural, not noise: at slide = window/16 the
# recompute baseline inserts every event ~16 times, so the shared path
# has to come out at least 3x faster on any machine.
check_pane_speedup() {
	go run ./cmd/benchjson -current "$pane_current" \
		-compare 'BenchmarkSlidingThroughput/recompute=BenchmarkSlidingThroughput/pane' |
		grep -o '"speedup": *[0-9.]*' | head -n 1 |
		awk -F': *' '{ if ($2 + 0 >= 3.0) { print "pane speedup " $2 "x (>= 3x)"; exit 0 } else { print "pane speedup " $2 "x below the 3x floor" > "/dev/stderr"; exit 1 } }'
}

gate pane-benchmarks bench_pane
gate pane-compare compare_pane
gate pane-speedup check_pane_speedup
cat BENCH_pane.json

budget_current=results/bench_budget_current.txt

bench_budget() {
	# -count=3 with benchjson's best-of-N duplicate handling: the two
	# sides differ by low single-digit percent at most, so the 0.98
	# ratio gate needs scheduler noise stripped out.
	go test -run '^$' -bench 'BenchmarkBudgetOverhead' \
		-benchmem -benchtime "$BENCHTIME" -count=3 . | tee "$budget_current"
}

compare_budget() {
	go run ./cmd/benchjson \
		-current "$budget_current" \
		-compare 'BenchmarkBudgetOverhead/off=BenchmarkBudgetOverhead/slack' \
		-out BENCH_budget.json
}

# The governor must be free when it is not binding: a run with a slack
# budget (tracked but never degrading) may cost at most 2% against the
# disabled path (MemoryBudget 0, nil governor).
check_budget_overhead() {
	go run ./cmd/benchjson -current "$budget_current" \
		-compare 'BenchmarkBudgetOverhead/off=BenchmarkBudgetOverhead/slack' |
		grep -o '"speedup": *[0-9.]*' | head -n 1 |
		awk -F': *' '{ if ($2 + 0 >= 0.98) { print "budget overhead " $2 "x (>= 0.98x)"; exit 0 } else { print "budget overhead " $2 "x below the 0.98x floor" > "/dev/stderr"; exit 1 } }'
}

gate budget-benchmarks bench_budget
gate budget-compare compare_budget
gate budget-overhead check_budget_overhead
cat BENCH_budget.json

echo "bench.sh: all gates passed"
