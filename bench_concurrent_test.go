package quantiles_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/concurrent"
	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/sketch"
)

// concurrentBenchBufSize is the per-writer buffer used by
// BenchmarkConcurrentInsert: large enough that the KLL handoff's
// copy-on-write clone amortizes to a few ns per insert.
const concurrentBenchBufSize = 4096

// BenchmarkConcurrentInsert measures aggregate insert throughput into
// ONE logical sketch under concurrent writers (bench.sh →
// BENCH_concurrent.json):
//
//   - <alg>/w=N: N goroutines, each with its own writer handle of a
//     shared sketch (the internal/concurrent path). ns/op is the
//     aggregate cost per insert — wall time divided by total inserts —
//     so halving it means doubling throughput.
//   - <alg>/w=ncpu: the same at runtime.NumCPU() writers, under a fixed
//     name so cross-machine comparisons in bench.sh stay stable.
//   - <alg>/locked/w=N: the architecture the concurrent layer replaces —
//     N goroutines sharing one serial sketch behind a mutex, every
//     insert taking the lock.
//
// The scaling story needs real cores: on a single-CPU runner w=1 vs
// w=4 is flat (there is no parallelism to exploit) and the locked/w=4
// vs w=4 pair carries the signal — buffered local appends with
// amortized handoff against a contended lock per insert.
func BenchmarkConcurrentInsert(b *testing.B) {
	vals := paretoValues(1<<20, 23)
	type alg struct {
		name     string
		mkShared func(writers int) concurrent.Shared
		builder  sketch.Builder
	}
	algs := []alg{
		{
			name: "kll",
			mkShared: func(writers int) concurrent.Shared {
				return concurrent.NewKLL(kll.DefaultK, writers, concurrentBenchBufSize)
			},
			builder: func() sketch.Sketch { return kll.New(kll.DefaultK) },
		},
		{
			name: "ddsketch",
			mkShared: func(writers int) concurrent.Shared {
				sh, err := concurrent.NewDDSketch(0.01, writers, concurrentBenchBufSize)
				if err != nil {
					b.Fatal(err)
				}
				return sh
			},
			builder: func() sketch.Sketch { return ddsketch.New(0.01) },
		},
	}
	writerCounts := []int{1, 2, 4}
	ncpu := runtime.NumCPU()
	for _, a := range algs {
		for _, wn := range writerCounts {
			b.Run(fmt.Sprintf("%s/w=%d", a.name, wn), func(b *testing.B) {
				benchSharedInsert(b, a.mkShared(wn), wn, vals)
			})
		}
		b.Run(a.name+"/w=ncpu", func(b *testing.B) {
			benchSharedInsert(b, a.mkShared(ncpu), ncpu, vals)
		})
		for _, wn := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/locked/w=%d", a.name, wn), func(b *testing.B) {
				benchLockedInsert(b, a.builder(), wn, vals)
			})
		}
	}
}

// benchSharedInsert splits b.N inserts across writers goroutines, each
// feeding its own handle, flushing at the end so the work is complete
// when the timer stops.
func benchSharedInsert(b *testing.B, sh concurrent.Shared, writers int, vals []float64) {
	per := b.N / writers
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := sh.Writer(i)
			off := i * 1013
			for j := 0; j < per; j++ {
				w.Insert(vals[(off+j)&(1<<20-1)])
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
}

// benchLockedInsert is the mutex baseline: the same split of b.N
// inserts, but every insert locks the one shared serial sketch.
func benchLockedInsert(b *testing.B, sk sketch.Sketch, writers int, vals []float64) {
	per := b.N / writers
	var mu sync.Mutex
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := i * 1013
			for j := 0; j < per; j++ {
				v := vals[(off+j)&(1<<20-1)]
				mu.Lock()
				sk.Insert(v)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
}
