// Distributed merge: the mergeability workflow of Sec 2.4 — partitioned
// data is summarized locally (here: concurrent workers, in production:
// separate machines), the sketches are serialized, shipped, deserialized
// and merged centrally, and the merged sketch answers global quantile
// queries without any raw data movement.
//
// The example compares every sketch type on the same workload and
// reports the merged estimate vs the exact global quantile, plus the
// bytes actually "shipped" — the point of sketching: ~KB instead of
// ~80 MB of raw data.
//
//	go run ./examples/distributedmerge
package main

import (
	"fmt"
	"math"
	"sort"
	"sync"

	quantiles "repro"
	"repro/internal/datagen"
)

const (
	workers   = 8
	perWorker = 250_000
)

func main() {
	// Build the global workload up front so we can compute exact truth.
	global := make([][]float64, workers)
	var all []float64
	for w := 0; w < workers; w++ {
		src := datagen.NewPareto(1.1, 1, datagen.DeriveSeed(99, w))
		global[w] = datagen.Take(src, perWorker)
		all = append(all, global[w]...)
	}
	sort.Float64s(all)
	exact := func(q float64) float64 {
		return all[int(math.Ceil(q*float64(len(all))))-1]
	}

	sketchTypes := []struct {
		name string
		make func() quantiles.Sketch
	}{
		{"ddsketch", func() quantiles.Sketch { return quantiles.NewDDSketch(0.01) }},
		{"uddsketch", func() quantiles.Sketch {
			s, err := quantiles.NewUDDSketchWithBudget(0.01, 1024, 12)
			if err != nil {
				panic(err)
			}
			return s
		}},
		{"kll", func() quantiles.Sketch { return quantiles.NewKLL(350) }},
		{"req", func() quantiles.Sketch { return quantiles.NewReqSketch(30, true) }},
		{"moments", func() quantiles.Sketch { return quantiles.NewMomentsWithTransform(12, quantiles.MomentsLog) }},
	}

	fmt.Printf("%d workers × %d points = %d total (%.0f MB raw)\n\n",
		workers, perWorker, len(all), float64(len(all)*8)/1e6)
	fmt.Println("sketch     shipped(B)   p50 err   p99 err")

	for _, st := range sketchTypes {
		// Phase 1: each worker sketches its partition concurrently and
		// serializes the result — the bytes that would cross the network.
		blobs := make([][]byte, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := st.make()
				quantiles.InsertAll(local, global[w])
				blob, err := local.MarshalBinary()
				if err != nil {
					panic(err)
				}
				blobs[w] = blob
			}(w)
		}
		wg.Wait()

		// Phase 2: the coordinator deserializes and merges.
		merged := st.make()
		shipped := 0
		for _, blob := range blobs {
			shipped += len(blob)
			part := st.make()
			if err := part.UnmarshalBinary(blob); err != nil {
				panic(err)
			}
			if err := merged.Merge(part); err != nil {
				panic(err)
			}
		}
		if merged.Count() != uint64(len(all)) {
			panic("count mismatch after merge")
		}

		qs := []float64{0.5, 0.99}
		ests, err := quantiles.Quantiles(merged, qs)
		if err != nil {
			panic(err)
		}
		relErr := func(i int) float64 {
			truth := exact(qs[i])
			return math.Abs(ests[i]-truth) / truth
		}
		fmt.Printf("%-10s %10d   %.5f   %.5f\n", st.name, shipped, relErr(0), relErr(1))
	}

	fmt.Println("\nEvery sketch summarizes 2M points in KBs; Moments ships ~150 bytes.")
}
