// Adaptive: the Sec 4.5.7 adaptability scenario as a runnable demo — a
// stream whose distribution switches abruptly halfway (discrete binomial
// readings, then a uniform regime), mimicking a sensor fleet firmware
// rollout. Sample-retaining sketches (KLL, REQ) stumble exactly at the
// switch-point quantile; histogram sketches (DDSketch, UDDSketch) do not
// care.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"math"
	"sort"

	quantiles "repro"
	"repro/internal/datagen"
)

func main() {
	const half = 500_000
	src := datagen.NewAdaptabilityWorkload(11, half)
	data := datagen.Take(src, 2*half)
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	exact := func(q float64) float64 {
		return sorted[int(math.Ceil(q*float64(len(sorted))))-1]
	}

	sketches := map[string]quantiles.Sketch{
		"kll":       quantiles.NewKLL(350),
		"req":       quantiles.NewReqSketch(30, true),
		"ddsketch":  quantiles.NewDDSketch(0.01),
		"uddsketch": mustUDD(),
		"moments":   quantiles.NewMoments(12),
	}
	for _, sk := range sketches {
		quantiles.InsertAll(sk, data)
	}

	fmt.Printf("1M Binomial(30,0.4) readings, then 1M U(30,100): the median sits ON the regime switch\n\n")
	fmt.Println("            q=0.25      q=0.50 (switch)   q=0.75")
	qs := []float64{0.25, 0.5, 0.75}
	for _, name := range []string{"kll", "req", "moments", "ddsketch", "uddsketch"} {
		sk := sketches[name]
		row := fmt.Sprintf("%-10s", name)
		ests, err := quantiles.Quantiles(sk, qs)
		if err != nil {
			panic(err)
		}
		for i, q := range qs {
			truth := exact(q)
			row += fmt.Sprintf("  %.4f    ", math.Abs(ests[i]-truth)/truth)
		}
		fmt.Println(row)
	}

	fmt.Printf("\nexact values: q25=%.0f q50=%.0f q75=%.0f — the jump from the binomial's max\n",
		exact(0.25), exact(0.5), exact(0.75))
	fmt.Println("(~20) to the uniform's min (30) is what sample-based sketches trip over:")
	fmt.Println("the retained neighbour of the median may come from either side of the gap.")
}

func mustUDD() quantiles.Sketch {
	s, err := quantiles.NewUDDSketchWithBudget(0.01, 1024, 12)
	if err != nil {
		panic(err)
	}
	return s
}
