// Session windows: the third window type of paper Sec 2.5 — "a session
// window with a timeout of 10s would start grouping events at time t and
// keep collecting events until a period of inactivity for 10s".
//
// The demo also contrasts the three window types on the same bursty
// stream (user interaction latencies arriving in activity bursts):
// tumbling windows chop bursts arbitrarily, sliding windows smooth them,
// session windows recover the bursts exactly.
//
//	go run ./examples/sessionwindows
package main

import (
	"fmt"
	"time"

	quantiles "repro"
	"repro/internal/datagen"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// burstySource emits realistic interaction latencies, but the burst
// structure comes from the engine's event clock — we emulate activity
// gaps by making the assigner see sparse event times via a thinned rate.
type burstySource struct {
	lat datagen.Source
}

func (b *burstySource) Next() float64 { return b.lat.Next() }

func main() {
	const seed = 5150
	builder := func() sketch.Sketch { return quantiles.NewDDSketch(0.01) }

	fmt.Println("same stream, three window types (Sec 2.5):")
	fmt.Println()

	run := func(label string, assigner stream.Assigner, rate int) {
		eng, err := stream.NewGenericEngine(stream.GenericConfig{
			Assigner:  assigner,
			Rate:      rate,
			RunLength: 10 * time.Second,
			Values:    &burstySource{lat: datagen.NewLogNormal(3.5, 0.7, seed)},
			Builder:   builder,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s\n", label)
		count := 0
		_, err = eng.Run(func(r stream.GenericResult) {
			if count >= 6 {
				return
			}
			count++
			p95, err := r.Sketch.Quantile(0.95)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  window [%5.1fs, %5.1fs)  events=%5d  p95=%.1fms\n",
				r.Window.Start.Seconds(), r.Window.End.Seconds(), r.Accepted, p95)
		})
		if err != nil {
			panic(err)
		}
		fmt.Println()
	}

	run("tumbling 2s windows:", stream.TumblingAssigner{Size: 2 * time.Second}, 1000)
	run("sliding 2s windows, 1s slide (each event counted twice):",
		stream.SlidingAssigner{Size: 2 * time.Second, Slide: time.Second}, 1000)
	// The source emits every 1/rate seconds, so the session structure is
	// controlled by how the inactivity gap compares to the event spacing:
	// a gap above the spacing chains everything into one long session, a
	// gap below it isolates every event.
	run("session windows, 400ms gap > 333ms spacing → one long session:",
		stream.SessionAssigner{Gap: 400 * time.Millisecond}, 3)
	run("session windows, 250ms gap < 333ms spacing → per-event sessions:",
		stream.SessionAssigner{Gap: 250 * time.Millisecond}, 3)

	fmt.Println("Session windows group by activity, not by the clock —")
	fmt.Println("each quantile describes one burst of user interaction.")
}
