// Latency monitor: the paper's motivating DDSketch use case — web
// response-time monitoring where "an increase from 2 to 20 seconds for a
// 0.01 quantile difference around the 0.99th quantile ... can indicate a
// serious service disruption affecting a limited number of users"
// (Sec 4.2).
//
// The example runs event-time tumbling windows over a simulated request
// stream that degrades mid-run (a slow dependency affects 1.5% of
// requests), and raises an alert when the windowed p99 crosses the SLO —
// which a mean- or median-based monitor would never catch.
//
//	go run ./examples/latencymonitor
package main

import (
	"fmt"
	"math"
	"time"

	quantiles "repro"
	"repro/internal/datagen"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// degradingLatency produces request latencies (ms): a healthy lognormal
// service that becomes partially degraded after the incident point.
type degradingLatency struct {
	healthy  datagen.Source
	slow     datagen.Source
	coin     datagen.Source
	produced int
	incident int
}

func (d *degradingLatency) Next() float64 {
	d.produced++
	if d.produced > d.incident && d.coin.Next() < 0.015 {
		return 2000 + 18000*d.slow.Next() // 2–20 s: the paper's disruption
	}
	return d.healthy.Next()
}

func main() {
	const (
		sloP99    = 1000.0 // ms
		rate      = 20000  // requests/s
		windowSec = 5
	)
	seed := uint64(7)
	src := &degradingLatency{
		healthy:  datagen.NewLogNormal(math.Log(40), 0.9, datagen.DeriveSeed(seed, 0)),
		slow:     datagen.NewUniform(0, 1, datagen.DeriveSeed(seed, 1)),
		coin:     datagen.NewUniform(0, 1, datagen.DeriveSeed(seed, 2)),
		incident: rate * windowSec * 4, // incident starts in window 4
	}

	eng, err := stream.NewEngine(stream.Config{
		WindowSize: windowSec * time.Second,
		Rate:       rate,
		NumWindows: 8,
		Partitions: 4, // four ingestion partitions, merged per window
		Values:     src,
		Delay:      stream.NewExponentialDelay(20*time.Millisecond, datagen.DeriveSeed(seed, 3)),
		Builder:    func() sketch.Sketch { return quantiles.NewDDSketch(0.01) },
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("monitoring p99 against SLO of %.0f ms (5s windows, %d req/s)\n\n", sloP99, rate)
	fmt.Println("window   requests   p50(ms)   p99(ms)   mean-ish p50 would say")
	_, err = eng.Run(func(r stream.WindowResult) {
		p50, err := r.Sketch.Quantile(0.5)
		if err != nil {
			panic(err)
		}
		p99, err := r.Sketch.Quantile(0.99)
		if err != nil {
			panic(err)
		}
		status := "ok"
		if p99 > sloP99 {
			status = "ALERT: p99 SLO breach"
		}
		fmt.Printf("  %2d     %8d   %7.1f   %7.1f   %s\n",
			r.Index, r.Accepted, p50, p99, status)
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("\nThe median never moves — only a tail quantile exposes the incident.")
}
