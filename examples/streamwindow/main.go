// Stream window: the paper's core experimental setting (Sec 4.2/4.6) as
// a runnable demo — event-time tumbling windows over the NYT taxi-fare
// workload with realistic network delay, late events dropped, and
// per-window quantile accuracy measured against the exact window
// contents.
//
//	go run ./examples/streamwindow
package main

import (
	"fmt"
	"time"

	quantiles "repro"
	"repro/internal/datagen"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/stream"
)

func main() {
	const seed = 2024
	src := datagen.NewSyntheticNYT(seed)

	eng, err := stream.NewEngine(stream.Config{
		WindowSize:    2 * time.Second,
		Rate:          50_000, // the study's event rate
		NumWindows:    6,
		Partitions:    4,
		Values:        src,
		Delay:         stream.NewExponentialDelay(30*time.Millisecond, seed+1),
		Builder:       func() sketch.Sketch { return quantiles.NewKLL(350) },
		CollectValues: true, // keep ground truth for the accuracy columns
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("NYT fares, 50k events/s, 2s windows, exponential delay (mean 30ms), late events dropped")
	fmt.Println()
	fmt.Println("window   accepted   late-dropped   median est/exact     p99 est/exact")
	results, statsAgg, err := eng.RunCollect()
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		exact := stats.NewExactQuantiles(r.Values)
		p50, err := r.Sketch.Quantile(0.5)
		if err != nil {
			panic(err)
		}
		p99, err := r.Sketch.Quantile(0.99)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %2d     %8d   %12d   $%6.2f / $%6.2f    $%6.2f / $%6.2f\n",
			r.Index, r.Accepted, r.DroppedLate,
			p50, exact.Quantile(0.5), p99, exact.Quantile(0.99))
	}
	fmt.Printf("\ntotals: generated %d, accepted %d, dropped late %d (%.2f%% loss)\n",
		statsAgg.Generated, statsAgg.Accepted, statsAgg.DroppedLate, 100*statsAgg.LossRate())
	fmt.Println("Dropping a small share of late events barely moves the estimates (Sec 4.6).")
}
