// Sliding quantile: a continuously updated "p99 over the last N events"
// using KLL± (Zhao et al.), the deletion-supporting KLL extension the
// study cites in Sec 3.1. Instead of rebuilding a sketch per window, the
// monitor inserts each arriving value and deletes the value that just
// left the horizon — O(1) amortized work per event for an always-fresh
// sliding quantile.
//
// The demo stream degrades for a stretch and recovers; the sliding p99
// follows both transitions, while a grow-only sketch (shown alongside)
// never recovers because it remembers the incident forever.
//
//	go run ./examples/slidingquantile
package main

import (
	"fmt"
	"math"

	quantiles "repro"
	"repro/internal/datagen"
	"repro/internal/kllpm"
)

func main() {
	const (
		horizon = 50_000  // sliding window: last 50k requests
		total   = 400_000 // stream length
	)
	sliding := kllpm.New(350)
	growing := quantiles.NewKLL(350)

	healthy := datagen.NewLogNormal(math.Log(30), 0.6, 1)
	degraded := datagen.NewLogNormal(math.Log(300), 0.6, 2)

	ring := make([]float64, horizon)
	fmt.Println("stream   true regime     sliding p99   grow-only p99")
	for i := 0; i < total; i++ {
		var v float64
		regime := "healthy"
		if i >= 150_000 && i < 250_000 {
			v = degraded.Next()
			regime = "DEGRADED"
		} else {
			v = healthy.Next()
		}
		sliding.Insert(v)
		growing.Insert(v)
		if i >= horizon {
			sliding.Delete(ring[i%horizon])
		}
		ring[i%horizon] = v

		if (i+1)%50_000 == 0 {
			sp99, err := sliding.Quantile(0.99)
			if err != nil {
				panic(err)
			}
			gp99, err := growing.Quantile(0.99)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%7d   %-12s   %8.0f ms   %8.0f ms\n", i+1, regime, sp99, gp99)
		}
	}
	fmt.Printf("\nsliding sketch state: %d B for a %d-event horizon (vs %d B raw)\n",
		sliding.MemoryBytes(), horizon, horizon*8)
	fmt.Println("After recovery the sliding p99 returns to baseline; the grow-only one cannot.")
}
