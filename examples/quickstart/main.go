// Quickstart: build a DDSketch over a simulated latency stream, query
// quantiles, and verify the relative-error guarantee against the exact
// values.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	quantiles "repro"
)

func main() {
	// A DDSketch with α = 0.01 guarantees every quantile estimate within
	// 1% relative error, using a few KB regardless of stream size.
	sk := quantiles.NewDDSketch(0.01)

	// Simulate 1M request latencies: lognormal body plus a slow tail.
	rng := rand.New(rand.NewPCG(42, 1))
	data := make([]float64, 1_000_000)
	for i := range data {
		ms := math.Exp(3 + 0.8*rng.NormFloat64()) // ~20ms median
		if rng.Float64() < 0.01 {
			ms *= 20 // occasional slow requests
		}
		data[i] = ms
		sk.Insert(ms)
	}

	fmt.Printf("events: %d, sketch memory: %d bytes\n\n", sk.Count(), sk.MemoryBytes())

	// Compare against exact quantiles.
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	exact := func(q float64) float64 {
		return sorted[int(math.Ceil(q*float64(len(sorted))))-1]
	}

	fmt.Println("quantile   estimate(ms)   exact(ms)   rel.err")
	qs := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	ests, err := quantiles.Quantiles(sk, qs) // one batched query, same results as per-q calls
	if err != nil {
		panic(err)
	}
	for i, q := range qs {
		truth := exact(q)
		fmt.Printf("  p%-5.1f   %10.2f   %9.2f   %.4f\n",
			q*100, ests[i], truth, math.Abs(ests[i]-truth)/truth)
	}

	// Rank queries answer "what fraction of requests finished within X?"
	r, err := sk.Rank(100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nrequests within 100ms: %.2f%%\n", r*100)
}
