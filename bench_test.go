// Benchmarks regenerating each table and figure of the study (run with
// `go test -bench=. -benchmem`). Micro-benchmarks (Insert/Query/Merge)
// feed Table 3 and Fig 5; experiment benchmarks run the corresponding
// harness experiment at a small scale and report its headline number as
// a custom metric. cmd/quantbench runs the same experiments at full,
// paper-sized scale.
package quantiles_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gk"
	"repro/internal/harness"
	"repro/internal/hdr"
	"repro/internal/mrl"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/tdigest"
)

// benchBuilders returns the five study-configured builders (Pareto
// setting: Moments log-transformed).
func benchBuilders(b *testing.B) map[string]sketch.Builder {
	b.Helper()
	builders, err := core.BuildersForDataset(datagen.DatasetPareto, 7)
	if err != nil {
		b.Fatal(err)
	}
	return builders
}

func paretoValues(n int, seed uint64) []float64 {
	return datagen.Take(datagen.NewPareto(1, 1, seed), n)
}

// BenchmarkInsert is Fig 5a: per-element insertion cost on Pareto data.
func BenchmarkInsert(b *testing.B) {
	vals := paretoValues(1<<20, 11)
	builders := benchBuilders(b)
	for _, alg := range core.AlgorithmNames() {
		builder := builders[alg]
		b.Run(alg, func(b *testing.B) {
			sk := builder()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Insert(vals[i&(1<<20-1)])
			}
		})
	}
}

// BenchmarkQuery is Fig 5b: answering the study's 8-quantile set at
// different consumed data sizes.
func BenchmarkQuery(b *testing.B) {
	qs := core.AllQuantiles()
	builders := benchBuilders(b)
	for _, n := range []int{100_000, 1_000_000} {
		vals := paretoValues(n, 13)
		for _, alg := range core.AlgorithmNames() {
			builder := builders[alg]
			b.Run(fmt.Sprintf("%s/n=%d", alg, n), func(b *testing.B) {
				sk := builder()
				sketch.InsertAll(sk, vals)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i > 0 {
						sk.Insert(vals[i%n]) // invalidate solver/view caches
					}
					for _, q := range qs {
						if _, err := sk.Quantile(q); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkMerge is Fig 5c: merging two sketches, each filled with the
// merge workload distributions.
func BenchmarkMerge(b *testing.B) {
	const fill = 100_000
	builders, err := core.BuildersForDataset(datagen.DatasetUniform, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, workload := range datagen.MergeWorkloadNames() {
		for _, alg := range core.AlgorithmNames() {
			builder := builders[alg]
			b.Run(fmt.Sprintf("%s/%s", alg, workload), func(b *testing.B) {
				pool := make([]sketch.Sketch, 8)
				for i := range pool {
					src, err := datagen.NewMergeWorkload(workload, uint64(100+i))
					if err != nil {
						b.Fatal(err)
					}
					sk := builder()
					for j := 0; j < fill; j++ {
						sk.Insert(src.Next())
					}
					pool[i] = sk
				}
				acc := builder()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Reset once per pool cycle: an accumulator that grows
					// with b.N makes later merge iterations measure an
					// ever-larger sketch instead of a steady-state merge.
					if i%len(pool) == 0 {
						acc.Reset()
					}
					if err := acc.Merge(pool[i%len(pool)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSerde measures serialization round-trips (the shipped-bytes
// cost of distributed merging).
func BenchmarkSerde(b *testing.B) {
	vals := paretoValues(200_000, 17)
	builders := benchBuilders(b)
	for _, alg := range core.AlgorithmNames() {
		builder := builders[alg]
		b.Run(alg, func(b *testing.B) {
			sk := builder()
			sketch.InsertAll(sk, vals)
			blob, err := sk.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(blob)))
			dst := builder()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blob, err = sk.MarshalBinary()
				if err != nil {
					b.Fatal(err)
				}
				if err := dst.UnmarshalBinary(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchOpts is a tiny-scale harness configuration for experiment
// benchmarks: one data pass, minimal repetitions.
func benchOpts() harness.Options {
	o := harness.DefaultOptions(0.02)
	o.Runs = 2
	return o
}

// runExperiment runs a harness experiment b.N times, reporting the given
// cell of the first table as a custom metric.
func runExperiment(b *testing.B, id string, metricRow, metricCol int, metricName string) {
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && metricName != "" {
			var v float64
			fmt.Sscanf(tables[0].Rows[metricRow][metricCol], "%f", &v)
			b.ReportMetric(v, metricName)
		}
	}
}

// BenchmarkTable3Memory regenerates Table 3 (memory usage per sketch).
func BenchmarkTable3Memory(b *testing.B) { runExperiment(b, "table3", 0, 1, "req-KB") }

// BenchmarkFig6Accuracy regenerates Fig 6 (streaming accuracy on the
// four data sets); the reported metric is the first algorithm's mid
// error on Pareto.
func BenchmarkFig6Accuracy(b *testing.B) { runExperiment(b, "fig6", 0, 1, "") }

// BenchmarkFig7Kurtosis regenerates Fig 7 (0.98-quantile error vs
// kurtosis).
func BenchmarkFig7Kurtosis(b *testing.B) { runExperiment(b, "fig7", 0, 2, "") }

// BenchmarkFig8Adaptability regenerates Fig 8 (distribution-switch
// accuracy).
func BenchmarkFig8Adaptability(b *testing.B) { runExperiment(b, "fig8", 0, 1, "") }

// BenchmarkLateData regenerates the Sec 4.6 late-arriving-data variant.
func BenchmarkLateData(b *testing.B) { runExperiment(b, "late", 0, 1, "") }

// BenchmarkStoreAblation regenerates the DDSketch store ablation.
func BenchmarkStoreAblation(b *testing.B) { runExperiment(b, "ablation-store", 0, 2, "") }

// BenchmarkHRAAblation regenerates the ReqSketch HRA/LRA ablation.
func BenchmarkHRAAblation(b *testing.B) { runExperiment(b, "ablation-hra", 0, 4, "") }

// BenchmarkBulkInsert measures the O(1) weighted-insert path against the
// loop fallback for a heavy point mass.
func BenchmarkBulkInsert(b *testing.B) {
	builders := benchBuilders(b)
	for _, alg := range []string{"ddsketch", "uddsketch", "moments"} {
		builder := builders[alg]
		b.Run(alg, func(b *testing.B) {
			sk := builder()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sketch.InsertRepeated(sk, 42.5, 1000)
			}
		})
	}
}

// BenchmarkInsertBatch compares per-element Insert against the native
// batch kernels (sketch.BatchInserter) on the same Pareto stream, in
// ns/event. The batch path feeds 256-value chunks, the granularity the
// stream engine's worker pool ships.
func BenchmarkInsertBatch(b *testing.B) {
	const chunk = 256
	vals := paretoValues(1<<20, 11)
	builders := benchBuilders(b)
	for _, alg := range core.AlgorithmNames() {
		builder := builders[alg]
		b.Run(alg+"/scalar", func(b *testing.B) {
			sk := builder()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Insert(vals[i&(1<<20-1)])
			}
		})
		b.Run(alg+"/batch", func(b *testing.B) {
			sk := builder()
			b.ResetTimer()
			for n := 0; n < b.N; n += chunk {
				start := n & (1<<20 - 1)
				m := chunk
				if n+m > b.N {
					m = b.N - n
				}
				if start+m > 1<<20 {
					m = 1<<20 - start
				}
				sketch.InsertAll(sk, vals[start:start+m])
			}
		})
	}
}

// BenchmarkQuantileAll compares answering the study's 8-quantile set
// with one Quantile call per q (scalar) against the native batched
// kernels (sketch.MultiQuantiler). Each iteration inserts one value
// first so cached CDF snapshots and maxent solutions are invalidated,
// as they are between stream windows.
func BenchmarkQuantileAll(b *testing.B) {
	qs := core.AllQuantiles()
	vals := paretoValues(1<<20, 13)
	builders := benchBuilders(b)
	for _, alg := range core.AlgorithmNames() {
		builder := builders[alg]
		sk := builder()
		sketch.InsertAll(sk, vals)
		b.Run(alg+"/scalar", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sk.Insert(vals[i&(1<<20-1)]) // invalidate solver/view caches
				for _, q := range qs {
					if _, err := sk.Quantile(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(alg+"/batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sk.Insert(vals[i&(1<<20-1)])
				if _, err := sketch.Quantiles(sk, qs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccuracyEval runs one single-dataset accuracy pass (the unit
// every accuracy experiment repeats) with sequential and parallel
// window evaluation; accuracy output is bit-identical at any worker
// count.
func BenchmarkAccuracyEval(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			o := benchOpts()
			o.EvalWorkers = workers
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunAccuracy(o, datagen.DatasetPareto); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSlidingThroughput compares the two ways to answer
// overlapping sliding windows at slide = window/16: recomputing every
// window from scratch (generic engine — each event is inserted into
// all ~16 open window sketches that contain it) against the
// pane-sharing engine (each event is inserted once into its pane, and
// each window is assembled by merging its 16 pane sketches). Both
// variants process ~b.N events end to end.
func BenchmarkSlidingThroughput(b *testing.B) {
	const (
		window = time.Second
		slide  = window / 16
		rate   = 100_000
	)
	vals := paretoValues(1<<18, 37)
	newSrc := func() datagen.Source {
		i := 0
		return datagen.SourceFunc(func() float64 {
			v := vals[i&(1<<18-1)]
			i++
			return v
		})
	}
	builders, err := core.BuildersForDataset(datagen.DatasetPareto, 7)
	if err != nil {
		b.Fatal(err)
	}
	// rate·slide events arrive per slide interval, and both engines run
	// for one slide interval per produced window.
	perSlide := int(float64(rate) * slide.Seconds())
	b.Run("recompute", func(b *testing.B) {
		eng, err := stream.NewGenericEngine(stream.GenericConfig{
			Assigner:  stream.SlidingAssigner{Size: window, Slide: slide},
			Rate:      rate,
			RunLength: time.Duration(b.N/perSlide+1) * slide,
			Values:    newSrc(),
			Builder:   builders["ddsketch"],
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := eng.Run(func(stream.GenericResult) {}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("pane", func(b *testing.B) {
		eng, err := stream.NewEngine(stream.Config{
			WindowSize: window,
			Slide:      slide,
			Rate:       rate,
			NumWindows: b.N/perSlide + 1,
			Partitions: 4,
			Workers:    1,
			Values:     newSrc(),
			Builder:    builders["ddsketch"],
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := eng.Run(func(stream.WindowResult) {}); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkRelatedInsert covers the Sec 5 related sketches under the
// same Fig 5a-style insertion workload.
func BenchmarkRelatedInsert(b *testing.B) {
	vals := paretoValues(1<<20, 23)
	related := map[string]func() sketch.Sketch{
		"tdigest": func() sketch.Sketch { return tdigest.New(tdigest.DefaultCompression) },
		"gk":      func() sketch.Sketch { return gk.New(gk.DefaultEpsilon) },
		"mrl":     func() sketch.Sketch { return mrl.NewWithSeed(mrl.DefaultBuffers, mrl.DefaultK, 7) },
		"hdr": func() sketch.Sketch {
			h, err := hdr.New(1, 100_000_000, 3)
			if err != nil {
				b.Fatal(err)
			}
			return h
		},
	}
	for name, mk := range related {
		b.Run(name, func(b *testing.B) {
			sk := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.Insert(vals[i&(1<<20-1)])
			}
		})
	}
}

// BenchmarkStreamThroughput measures the full engine pipeline (event
// generation, delay heap, windowing, sketch insert) in events/op.
func BenchmarkStreamThroughput(b *testing.B) {
	vals := paretoValues(1<<18, 29)
	i := 0
	src := datagen.SourceFunc(func() float64 {
		v := vals[i&(1<<18-1)]
		i++
		return v
	})
	builders, err := core.BuildersForDataset(datagen.DatasetPareto, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, delayed := range []bool{false, true} {
		name := "no-delay"
		var delay stream.DelayModel = stream.ZeroDelay{}
		if delayed {
			name = "exp-delay"
			delay = stream.NewExponentialDelay(20*time.Millisecond, 31)
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/w=%d", name, workers), func(b *testing.B) {
				// One window per 100k events; b.N events total.
				windows := b.N/100_000 + 1
				eng, err := stream.NewEngine(stream.Config{
					WindowSize: time.Second,
					Rate:       100_000,
					NumWindows: windows,
					Partitions: 4,
					Workers:    workers,
					Values:     src,
					Delay:      delay,
					Builder:    builders["ddsketch"],
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				if _, err := eng.Run(func(stream.WindowResult) {}); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkBudgetOverhead measures what the memory-budget governor
// costs the serial hot path. "off" is MemoryBudget 0 (nil governor:
// one predictable branch per cadence check); "slack" is a budget so
// far above the workload's footprint that the governor tracks and
// enforces on cadence but never degrades, evicts or sheds. bench.sh
// gates off=slack at >= 0.98x: a non-binding budget may cost at most
// 2% throughput, and a disabled one nothing measurable.
func BenchmarkBudgetOverhead(b *testing.B) {
	vals := paretoValues(1<<18, 29)
	builders, err := core.BuildersForDataset(datagen.DatasetPareto, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		budget int
	}{
		{"off", 0},
		{"slack", 1 << 30},
	} {
		b.Run(bc.name, func(b *testing.B) {
			i := 0
			src := datagen.SourceFunc(func() float64 {
				v := vals[i&(1<<18-1)]
				i++
				return v
			})
			eng, err := stream.NewEngine(stream.Config{
				WindowSize:   time.Second,
				Rate:         100_000,
				NumWindows:   b.N/100_000 + 1,
				Partitions:   4,
				Workers:      1,
				Values:       src,
				Builder:      builders["ddsketch"],
				MemoryBudget: bc.budget,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := eng.Run(func(stream.WindowResult) {}); err != nil {
				b.Fatal(err)
			}
		})
	}
}
