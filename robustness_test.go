package quantiles_test

import (
	"math"
	"math/rand/v2"
	"testing"

	quantiles "repro"
	"repro/internal/datagen"
	"repro/internal/gk"
	"repro/internal/hdr"
	"repro/internal/mrl"
)

// deterministicSketches are insertion-order-sensitive only in rounding
// (histograms, moments) or fully order-free; for these, any permutation
// of the same multiset must yield identical quantile answers.
func deterministicSketches(t *testing.T) map[string]func() quantiles.Sketch {
	t.Helper()
	return map[string]func() quantiles.Sketch{
		"ddsketch": func() quantiles.Sketch { return quantiles.NewDDSketch(0.01) },
		"moments":  func() quantiles.Sketch { return quantiles.NewMoments(10) },
		"hdr": func() quantiles.Sketch {
			h, err := hdr.New(1, 1_000_000, 3)
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
	}
}

// TestPermutationInvariance: deterministic summary sketches must answer
// identically regardless of insertion order.
func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = math.Round(rng.Float64()*100000) + 1
	}
	shuffled := append([]float64(nil), data...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	for name, mk := range deterministicSketches(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(), mk()
			quantiles.InsertAll(a, data)
			quantiles.InsertAll(b, shuffled)
			for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
				va, err1 := a.Quantile(q)
				vb, err2 := b.Quantile(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("q=%v: %v / %v", q, err1, err2)
				}
				// Moments accumulates floating point sums whose rounding is
				// order-dependent; allow relative slack 1e-9 there, exact
				// equality for the histogram sketches.
				if name == "moments" {
					if math.Abs(va-vb) > 1e-9*(1+math.Abs(va)) {
						t.Errorf("q=%v: %v != %v across permutations", q, va, vb)
					}
				} else if va != vb {
					t.Errorf("q=%v: %v != %v across permutations", q, va, vb)
				}
			}
		})
	}
}

// TestUnionViaMergeEqualsDirect: for linear sketches, merging partitions
// equals direct insertion exactly.
func TestUnionViaMergeEqualsDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	data := make([]float64, 30000)
	for i := range data {
		data[i] = rng.ExpFloat64()*100 + 1
	}
	for name, mk := range deterministicSketches(t) {
		t.Run(name, func(t *testing.T) {
			direct, merged := mk(), mk()
			quantiles.InsertAll(direct, data)
			for p := 0; p < 5; p++ {
				part := mk()
				lo, hi := p*6000, (p+1)*6000
				quantiles.InsertAll(part, data[lo:hi])
				if err := merged.Merge(part); err != nil {
					t.Fatal(err)
				}
			}
			for _, q := range []float64{0.1, 0.5, 0.9} {
				va, _ := direct.Quantile(q)
				vb, _ := merged.Quantile(q)
				slack := 0.0
				if name == "moments" {
					slack = 1e-6 * (1 + math.Abs(va))
				}
				if math.Abs(va-vb) > slack {
					t.Errorf("q=%v: direct %v vs merged %v", q, va, vb)
				}
			}
		})
	}
}

// allSerializables lists every sketch with a binary codec.
func allSerializables(t *testing.T) map[string]func() quantiles.Sketch {
	t.Helper()
	out := map[string]func() quantiles.Sketch{
		"tdigest": func() quantiles.Sketch { return quantiles.NewTDigest(100) },
		"gk":      func() quantiles.Sketch { return gk.New(0.01) },
		"mrl":     func() quantiles.Sketch { return mrl.New(8, 64) },
	}
	for name, mk := range deterministicSketches(t) {
		out[name] = mk
	}
	out["kll"] = func() quantiles.Sketch { return quantiles.NewKLL(64) }
	out["req"] = func() quantiles.Sketch { return quantiles.NewReqSketch(8, true) }
	out["uddsketch"] = func() quantiles.Sketch {
		s, err := quantiles.NewUDDSketch(0.01, 256)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return out
}

// TestFuzzDeserializeNeverPanics: feeding arbitrary bytes (random blobs,
// bit-flipped valid blobs, truncations) to UnmarshalBinary must error or
// succeed — never panic or hang.
func TestFuzzDeserializeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for name, mk := range allSerializables(t) {
		t.Run(name, func(t *testing.T) {
			// A valid blob to mutate.
			src := mk()
			vals := datagen.Take(datagen.NewUniform(1, 1000, 7), 2000)
			quantiles.InsertAll(src, vals)
			valid, err := src.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			try := func(blob []byte) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %d-byte blob: %v", len(blob), r)
					}
				}()
				dst := mk()
				if err := dst.UnmarshalBinary(blob); err == nil {
					// Decoded fine: it must then answer queries without
					// panicking too.
					if dst.Count() > 0 {
						_, _ = dst.Quantile(0.5)
						_, _ = dst.Rank(1)
					}
				}
			}
			// Random blobs.
			for i := 0; i < 200; i++ {
				blob := make([]byte, rng.IntN(200))
				for j := range blob {
					blob[j] = byte(rng.Uint64())
				}
				try(blob)
			}
			// Truncations of a valid blob.
			for cut := 0; cut < len(valid) && cut < 128; cut++ {
				try(valid[:cut])
			}
			// Single-bit corruptions.
			for i := 0; i < 200; i++ {
				blob := append([]byte(nil), valid...)
				pos := rng.IntN(len(blob))
				blob[pos] ^= 1 << uint(rng.IntN(8))
				try(blob)
			}
		})
	}
}

// TestNaNAndInfInputs: pathological inputs must not corrupt any sketch.
func TestNaNAndInfInputs(t *testing.T) {
	for name, mk := range allSerializables(t) {
		t.Run(name, func(t *testing.T) {
			sk := mk()
			sk.Insert(math.NaN()) // ignored or clamped, never fatal
			for i := 1; i <= 100; i++ {
				sk.Insert(float64(i))
			}
			v, err := sk.Quantile(0.5)
			if err != nil {
				t.Fatalf("median: %v", err)
			}
			if math.IsNaN(v) {
				t.Error("NaN leaked into estimates")
			}
		})
	}
}
