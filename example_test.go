package quantiles_test

import (
	"fmt"
	"sync"

	quantiles "repro"
)

// The basic workflow: insert a stream, query quantiles within the
// configured relative-error guarantee.
func Example() {
	sk := quantiles.NewDDSketch(0.01)
	for i := 1; i <= 100000; i++ {
		sk.Insert(float64(i))
	}
	median, _ := sk.Quantile(0.5)
	p99, _ := sk.Quantile(0.99)
	fmt.Printf("median within 1%%: %v\n", median > 49500 && median < 50500)
	fmt.Printf("p99 within 1%%: %v\n", p99 > 98010 && p99 < 99990)
	// Output:
	// median within 1%: true
	// p99 within 1%: true
}

// Merging summarizes partitioned data without moving it: sketch each
// partition locally, merge the small summaries centrally.
func ExampleSketch_merge() {
	partA := quantiles.NewDDSketch(0.01)
	partB := quantiles.NewDDSketch(0.01)
	for i := 1; i <= 5000; i++ {
		partA.Insert(float64(i)) // values 1..5000
	}
	for i := 5001; i <= 10000; i++ {
		partB.Insert(float64(i)) // values 5001..10000
	}
	global := quantiles.NewDDSketch(0.01)
	_ = global.Merge(partA)
	_ = global.Merge(partB)
	fmt.Println("count:", global.Count())
	med, _ := global.Quantile(0.5)
	fmt.Printf("median ≈ 5000: %v\n", med > 4950 && med < 5050)
	// Output:
	// count: 10000
	// median ≈ 5000: true
}

// Serialization ships a sketch across processes; the decoded sketch
// answers identically.
func ExampleSketch_serialization() {
	src := quantiles.NewKLL(200)
	for i := 1; i <= 10000; i++ {
		src.Insert(float64(i))
	}
	blob, _ := src.MarshalBinary()

	dst := quantiles.NewKLL(200) // same configuration
	_ = dst.UnmarshalBinary(blob)
	a, _ := src.Quantile(0.9)
	b, _ := dst.Quantile(0.9)
	fmt.Println("identical answers:", a == b)
	fmt.Println("wire size under 2KB:", len(blob) < 2048)
	// Output:
	// identical answers: true
	// wire size under 2KB: true
}

// Rank answers the inverse question: what fraction of the stream was ≤ x?
func ExampleSketch_rank() {
	sk := quantiles.NewDDSketch(0.01)
	for i := 1; i <= 1000; i++ {
		sk.Insert(float64(i))
	}
	r, _ := sk.Rank(250)
	fmt.Printf("rank(250) ≈ 0.25: %v\n", r > 0.24 && r < 0.26)
	// Output:
	// rank(250) ≈ 0.25: true
}

// Moments Sketch fits data spanning many orders of magnitude when given
// a log transform — the study's configuration for Pareto-like data.
func ExampleNewMomentsWithTransform() {
	sk := quantiles.NewMomentsWithTransform(12, quantiles.MomentsLog)
	for i := 1; i <= 50000; i++ {
		sk.Insert(float64(i) * float64(i)) // quadratic growth: wide range
	}
	fmt.Println("state under 200 bytes:", sk.MemoryBytes() < 200)
	med, err := sk.Quantile(0.5)
	fmt.Println("err:", err)
	truth := 25000.0 * 25000.0
	fmt.Printf("median within 5%%: %v\n", med > truth*0.95 && med < truth*1.05)
	// Output:
	// state under 200 bytes: true
	// err: <nil>
	// median within 5%: true
}

// Concurrent ingestion: writer goroutines insert through private
// buffer handles while any goroutine snapshots live quantiles. At
// quiescence (all writers flushed) snapshots are exact.
func ExampleNewConcurrentDDSketch() {
	sh, _ := quantiles.NewConcurrentDDSketch(0.01, 4, 1024)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(h *quantiles.ConcurrentWriter, base int) {
			defer wg.Done()
			for i := 1; i <= 25000; i++ {
				h.Insert(float64(base + i))
			}
			h.Flush()
		}(sh.Writer(w), w*25000)
	}
	wg.Wait()
	snap := sh.Snapshot()
	median, _ := snap.Quantile(0.5)
	fmt.Printf("count: %d\n", snap.Count())
	fmt.Printf("median within 1%%: %v\n", median > 49500 && median < 50500)
	// Output:
	// count: 100000
	// median within 1%: true
}
