package quantiles_test

import (
	"math"
	"testing"

	quantiles "repro"
	"repro/internal/datagen"
	"repro/internal/stats"
)

// TestSoakAgainstOracle runs every sketch against the exact oracle over
// a mixed workload of inserts, merges, serialization round-trips and
// resets, checking the documented accuracy property at every checkpoint.
// This is the repository's long-form invariant test: if any state
// transition corrupts a sketch, some later checkpoint catches it.
func TestSoakAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	type contender struct {
		mk func() quantiles.Sketch
		// check returns an error bound appropriate to the sketch's
		// guarantee for the given oracle and quantile.
		tolerance func(exact *stats.ExactQuantiles, q, est float64) float64
	}
	relTol := func(bound float64) func(*stats.ExactQuantiles, float64, float64) float64 {
		return func(exact *stats.ExactQuantiles, q, est float64) float64 {
			return stats.RelativeError(exact.Quantile(q), est) - bound
		}
	}
	rankTol := func(bound float64) func(*stats.ExactQuantiles, float64, float64) float64 {
		return func(exact *stats.ExactQuantiles, q, est float64) float64 {
			return stats.RankError(exact, q, est) - bound
		}
	}
	contenders := map[string]contender{
		"ddsketch": {
			mk:        func() quantiles.Sketch { return quantiles.NewDDSketch(0.01) },
			tolerance: relTol(0.0101),
		},
		"uddsketch": {
			mk: func() quantiles.Sketch {
				s, err := quantiles.NewUDDSketchWithBudget(0.01, 1024, 12)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			tolerance: relTol(0.0101),
		},
		"kll": {
			mk:        func() quantiles.Sketch { return quantiles.NewKLLWithSeed(350, 11) },
			tolerance: rankTol(0.03),
		},
		"req": {
			mk:        func() quantiles.Sketch { return quantiles.NewReqSketchWithSeed(30, true, 12) },
			tolerance: rankTol(0.03),
		},
	}
	for name, c := range contenders {
		t.Run(name, func(t *testing.T) {
			main := c.mk()
			src := datagen.NewPareto(1.2, 1, 77)
			var all []float64
			phaseLen := 40000

			checkpoint := func(phase string) {
				exact := stats.NewExactQuantiles(all)
				for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
					est, err := main.Quantile(q)
					if err != nil {
						t.Fatalf("%s q=%v: %v", phase, q, err)
					}
					if over := c.tolerance(exact, q, est); over > 0 {
						t.Errorf("%s q=%v: bound exceeded by %v", phase, q, over)
					}
				}
				if main.Count() != uint64(len(all)) {
					t.Fatalf("%s: count %d, oracle %d", phase, main.Count(), len(all))
				}
			}

			// Phase 1: plain inserts.
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("insert")

			// Phase 2: merge a separately built partition in.
			part := c.mk()
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				part.Insert(x)
			}
			if err := main.Merge(part); err != nil {
				t.Fatal(err)
			}
			checkpoint("merge")

			// Phase 3: serialization round trip, then continue inserting
			// into the decoded sketch.
			blob, err := main.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decoded := c.mk()
			if err := decoded.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			main = decoded
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("serde+insert")

			// Phase 4: reset and rebuild from scratch.
			main.Reset()
			all = all[:0]
			for i := 0; i < phaseLen; i++ {
				x := math.Abs(src.Next())
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("reset+rebuild")
		})
	}
}
