package quantiles_test

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	quantiles "repro"
	"repro/internal/checkpoint"
	"repro/internal/concurrent"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/kll"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/stream"
)

// TestSoakAgainstOracle runs every sketch against the exact oracle over
// a mixed workload of inserts, merges, serialization round-trips and
// resets, checking the documented accuracy property at every checkpoint.
// This is the repository's long-form invariant test: if any state
// transition corrupts a sketch, some later checkpoint catches it.
func TestSoakAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	type contender struct {
		mk func() quantiles.Sketch
		// check returns an error bound appropriate to the sketch's
		// guarantee for the given oracle and quantile.
		tolerance func(exact *stats.ExactQuantiles, q, est float64) float64
	}
	relTol := func(bound float64) func(*stats.ExactQuantiles, float64, float64) float64 {
		return func(exact *stats.ExactQuantiles, q, est float64) float64 {
			return stats.RelativeError(exact.Quantile(q), est) - bound
		}
	}
	rankTol := func(bound float64) func(*stats.ExactQuantiles, float64, float64) float64 {
		return func(exact *stats.ExactQuantiles, q, est float64) float64 {
			return stats.RankError(exact, q, est) - bound
		}
	}
	contenders := map[string]contender{
		"ddsketch": {
			mk:        func() quantiles.Sketch { return quantiles.NewDDSketch(0.01) },
			tolerance: relTol(0.0101),
		},
		"uddsketch": {
			mk: func() quantiles.Sketch {
				s, err := quantiles.NewUDDSketchWithBudget(0.01, 1024, 12)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			tolerance: relTol(0.0101),
		},
		"kll": {
			mk:        func() quantiles.Sketch { return quantiles.NewKLLWithSeed(350, 11) },
			tolerance: rankTol(0.03),
		},
		"req": {
			mk:        func() quantiles.Sketch { return quantiles.NewReqSketchWithSeed(30, true, 12) },
			tolerance: rankTol(0.03),
		},
	}
	for name, c := range contenders {
		t.Run(name, func(t *testing.T) {
			main := c.mk()
			src := datagen.NewPareto(1.2, 1, 77)
			var all []float64
			phaseLen := 40000

			checkpoint := func(phase string) {
				exact := stats.NewExactQuantiles(all)
				for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
					est, err := main.Quantile(q)
					if err != nil {
						t.Fatalf("%s q=%v: %v", phase, q, err)
					}
					if over := c.tolerance(exact, q, est); over > 0 {
						t.Errorf("%s q=%v: bound exceeded by %v", phase, q, over)
					}
				}
				if main.Count() != uint64(len(all)) {
					t.Fatalf("%s: count %d, oracle %d", phase, main.Count(), len(all))
				}
			}

			// Phase 1: plain inserts.
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("insert")

			// Phase 2: merge a separately built partition in.
			part := c.mk()
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				part.Insert(x)
			}
			if err := main.Merge(part); err != nil {
				t.Fatal(err)
			}
			checkpoint("merge")

			// Phase 3: serialization round trip, then continue inserting
			// into the decoded sketch.
			blob, err := main.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decoded := c.mk()
			if err := decoded.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			main = decoded
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("serde+insert")

			// Phase 4: reset and rebuild from scratch.
			main.Reset()
			all = all[:0]
			for i := 0; i < phaseLen; i++ {
				x := math.Abs(src.Next())
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("reset+rebuild")
		})
	}
}

// TestSoakCrashRecovery is the long-form fault-tolerance soak: one
// uninterrupted baseline run, then the same workload killed at a
// pseudo-random (worker, event) point over and over, each time
// recovering from the newest checkpoint. Every recovered run must
// reproduce the baseline exactly — the stream accounting identity
// intact, every window's collected values and serialized sketch
// bit-identical — no matter where the crash landed.
func TestSoakCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	mkCfg := func() stream.Config {
		return stream.Config{
			WindowSize:    time.Second,
			Rate:          4000,
			NumWindows:    5,
			Partitions:    4,
			Workers:       4,
			NewValues:     func() datagen.Source { return datagen.NewPareto(1.2, 1, 55) },
			NewDelay:      func() stream.DelayModel { return stream.NewExponentialDelay(120*time.Millisecond, 57) },
			Builder:       func() sketch.Sketch { return kll.NewWithSeed(128, 53) },
			CollectValues: true,
		}
	}
	eng, err := stream.NewEngine(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	baseline, baseStats, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Generated != baseStats.Accepted+baseStats.DroppedLate+baseStats.RejectedInput {
		t.Fatalf("baseline violates the accounting identity: %+v", baseStats)
	}
	baseBlobs := make([][]byte, len(baseline))
	for i, r := range baseline {
		if baseBlobs[i], err = r.Sketch.MarshalBinary(); err != nil {
			t.Fatal(err)
		}
	}

	// Each of the 4 workers owns one partition and inserts ~1/4 of the
	// accepted events, so a kill point inside [0, total/5) is guaranteed
	// to be reached by whichever worker it lands on.
	perWorker := int64(baseStats.Generated) / 5
	met := obs.NewRegistry().Engine()
	seedState := uint64(0x50a4beef)
	for iter := 0; iter < 10; iter++ {
		worker := int(datagen.SplitMix64(&seedState) % 4)
		event := int64(datagen.SplitMix64(&seedState) % uint64(perWorker))
		cfg := mkCfg()
		cfg.CheckpointStore = checkpoint.NewMemStore()
		cfg.CheckpointEvery = 1
		cfg.Faults = faultinject.New().WithPanic(worker, event)
		cfg.Metrics = met
		results, st, err := stream.RunRecovering(cfg)
		if err != nil {
			t.Fatalf("iter %d (kill worker %d at event %d): %v", iter, worker, event, err)
		}
		if st != baseStats {
			t.Fatalf("iter %d: stats diverged: got %+v want %+v", iter, st, baseStats)
		}
		if st.Generated != st.Accepted+st.DroppedLate+st.RejectedInput {
			t.Fatalf("iter %d: accounting identity broken: %+v", iter, st)
		}
		if len(results) != len(baseline) {
			t.Fatalf("iter %d: %d windows, want %d", iter, len(results), len(baseline))
		}
		for i, r := range results {
			b := baseline[i]
			if r.Index != b.Index || r.Accepted != b.Accepted || r.DroppedLate != b.DroppedLate {
				t.Fatalf("iter %d window %d: header diverged: got %+v want %+v", iter, i, r, b)
			}
			if len(r.Values) != len(b.Values) {
				t.Fatalf("iter %d window %d: %d values, want %d", iter, i, len(r.Values), len(b.Values))
			}
			for j := range r.Values {
				if math.Float64bits(r.Values[j]) != math.Float64bits(b.Values[j]) {
					t.Fatalf("iter %d window %d: value %d diverged", iter, i, j)
				}
			}
			blob, err := r.Sketch.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, baseBlobs[i]) {
				t.Fatalf("iter %d window %d: recovered sketch is not bit-identical to the baseline", iter, i)
			}
		}
	}
	if got := met.RecoveredPanics.Load(); got != 10 {
		t.Errorf("recovered %d panics over 10 kills, want 10 (some kill points never fired)", got)
	}
}

// TestSoakTransientStoreFaults proves the fault-hardened checkpoint
// path end to end: a run whose checkpoint store fails transiently —
// EIO bursts, a slow write, a torn write that leaves a half-record on
// disk — completes without surfacing any error when wrapped in
// checkpoint.RetryStore, retries are counted, and the output is
// bit-identical to an unfaulted baseline. The store underneath is a
// real DirStore so the atomic temp-file/rename/dir-fsync path is the
// one being hammered.
func TestSoakTransientStoreFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	mkCfg := func() stream.Config {
		return stream.Config{
			WindowSize:    time.Second,
			Rate:          4000,
			NumWindows:    5,
			Partitions:    4,
			Workers:       4,
			NewValues:     func() datagen.Source { return datagen.NewPareto(1.2, 1, 55) },
			NewDelay:      func() stream.DelayModel { return stream.NewExponentialDelay(120*time.Millisecond, 57) },
			Builder:       func() sketch.Sketch { return kll.NewWithSeed(128, 53) },
			CollectValues: true,
		}
	}
	eng, err := stream.NewEngine(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	baseline, baseStats, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	baseBlobs := make([][]byte, len(baseline))
	for i, r := range baseline {
		if baseBlobs[i], err = r.Sketch.MarshalBinary(); err != nil {
			t.Fatal(err)
		}
	}
	checkAgainstBaseline := func(results []stream.WindowResult, st stream.Stats) {
		t.Helper()
		if st != baseStats {
			t.Fatalf("stats diverged: got %+v want %+v", st, baseStats)
		}
		for i, r := range results {
			blob, err := r.Sketch.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, baseBlobs[i]) {
				t.Fatalf("window %d: sketch under store faults is not bit-identical to the baseline", i)
			}
		}
	}

	// Part 1: a healthy run over a flaky store. Every checkpoint seq is
	// targeted by some transient fault; RetryStore absorbs all of them.
	met := obs.NewRegistry().Engine()
	plan, err := faultinject.Parse("eio@1:2, slow@2:1ms, torn@3")
	if err != nil {
		t.Fatal(err)
	}
	inner, err := checkpoint.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mkCfg()
	cfg.CheckpointStore = &checkpoint.RetryStore{
		Inner:   plan.WrapStore(inner),
		Retries: &met.CheckpointRetries,
	}
	cfg.CheckpointEvery = 1
	cfg.Metrics = met
	eng, err = stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := eng.RunCollect()
	if err != nil {
		t.Fatalf("flaky store surfaced an error through RetryStore: %v", err)
	}
	checkAgainstBaseline(results, st)
	// eio fires twice and the torn write once; the slow write succeeds
	// on its first (delayed) attempt.
	if got := met.CheckpointRetries.Load(); got < 3 {
		t.Errorf("checkpoint retries = %d, want >= 3 (injected faults never fired)", got)
	}

	// Part 2: transient store faults during crash recovery — the torn
	// write lands a half-record that the recovery scan must skip via
	// the envelope checksum while RetryStore keeps the writes flowing.
	plan, err = faultinject.Parse("eio@2:2, torn@1")
	if err != nil {
		t.Fatal(err)
	}
	plan = plan.WithPanic(2, int64(baseStats.Generated)/6)
	inner, err = checkpoint.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	met = obs.NewRegistry().Engine()
	cfg = mkCfg()
	cfg.CheckpointStore = &checkpoint.RetryStore{
		Inner:   plan.WrapStore(inner),
		Retries: &met.CheckpointRetries,
	}
	cfg.CheckpointEvery = 1
	cfg.Faults = plan
	cfg.Metrics = met
	results, st, err = stream.RunRecovering(cfg)
	if err != nil {
		t.Fatalf("recovery under transient store faults: %v", err)
	}
	checkAgainstBaseline(results, st)
	if met.RecoveredPanics.Load() == 0 {
		t.Error("the injected panic never fired")
	}
	if met.CheckpointRetries.Load() == 0 {
		t.Error("the injected store faults never fired")
	}
}

// TestConcurrentSharedSketchSoak is the multi-writer/multi-reader soak
// for the concurrent shared-sketch layer (internal/concurrent): seeded
// writers hammer inserts while readers continuously snapshot and query,
// checking on every snapshot that (a) the epoch never goes backward,
// (b) the observed count never exceeds what the writers have inserted,
// (c) it never trails the writers' published progress by more than the
// relaxation bound NumWriters × BufferSize (plus one in-flight value
// per writer), and (d) quantile estimates stay inside the data range.
// Run under -race (the verify.sh concurrent gate does) it also proves
// the handoff protocol race-free end to end.
func TestConcurrentSharedSketchSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		numWriters = 4
		numReaders = 4
		perWriter  = 50_000
		bufSize    = 128
		lo, hi     = 1.0, 1000.0
	)
	for name, mk := range map[string]func() concurrent.Shared{
		"kll": func() concurrent.Shared { return concurrent.NewKLL(kll.DefaultK, numWriters, bufSize) },
		"ddsketch": func() concurrent.Shared {
			sh, err := concurrent.NewDDSketch(0.01, numWriters, bufSize)
			if err != nil {
				t.Fatal(err)
			}
			return sh
		},
	} {
		t.Run(name, func(t *testing.T) {
			sh := mk()
			// progress[i] is writer i's published insert count; readers
			// bound every snapshot against the sum.
			var progress [numWriters]atomic.Int64
			sumProgress := func() uint64 {
				var s int64
				for i := range progress {
					s += progress[i].Load()
				}
				return uint64(s)
			}
			// One unpublished in-flight value per writer on top of the
			// buffered-items bound (progress is incremented after the
			// insert that may have flushed it).
			slack := sh.MaxRelaxation() + numWriters

			var writers, readers sync.WaitGroup
			done := make(chan struct{})
			for i := 0; i < numWriters; i++ {
				writers.Add(1)
				go func(i int) {
					defer writers.Done()
					w := sh.Writer(i)
					seed := uint64(0xc0ffee) + uint64(i)*0x9e3779b97f4a7c15
					for j := 0; j < perWriter; j++ {
						u := float64(datagen.SplitMix64(&seed)>>11) / float64(1<<53)
						w.Insert(lo + u*(hi-lo))
						progress[i].Add(1)
					}
					w.Flush()
				}(i)
			}
			for r := 0; r < numReaders; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					var lastEpoch uint64
					for {
						select {
						case <-done:
							return
						default:
						}
						before := sumProgress()
						snap := sh.Snapshot().(*concurrent.Snapshot)
						if snap.Epoch() < lastEpoch {
							t.Errorf("snapshot epoch went backward: %d after %d", snap.Epoch(), lastEpoch)
							return
						}
						lastEpoch = snap.Epoch()
						c := snap.Count()
						if after := sumProgress(); c > after+numWriters {
							t.Errorf("snapshot count %d exceeds inserted %d", c, after)
							return
						}
						if c+slack < before {
							t.Errorf("snapshot count %d trails inserted %d beyond relaxation bound %d",
								c, before, slack)
							return
						}
						if c == 0 {
							continue
						}
						qs, err := sketch.Quantiles(snap, []float64{0.1, 0.5, 0.9, 0.99, 1})
						if err != nil {
							t.Errorf("live quantiles: %v", err)
							return
						}
						for i, est := range qs {
							if est < lo || est > hi {
								t.Errorf("live quantile %d = %v outside data range [%v, %v]", i, est, lo, hi)
								return
							}
						}
					}
				}()
			}
			writers.Wait()
			close(done)
			readers.Wait()
			if t.Failed() {
				return
			}
			// Quiescent: the relaxation collapses and the shared sketch
			// holds exactly every inserted value.
			final := sh.Snapshot()
			if c := final.Count(); c != numWriters*perWriter {
				t.Fatalf("final count %d, want %d", c, numWriters*perWriter)
			}
			// Uniform data: the median must land near the midpoint (both
			// sketches guarantee far tighter than ±5% here).
			med, err := final.Quantile(0.5)
			if err != nil {
				t.Fatal(err)
			}
			if mid := (lo + hi) / 2; math.Abs(med-mid) > 0.05*(hi-lo) {
				t.Errorf("final median %v too far from %v for uniform data", med, mid)
			}
		})
	}
}
