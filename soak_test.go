package quantiles_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	quantiles "repro"
	"repro/internal/checkpoint"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/kll"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/stream"
)

// TestSoakAgainstOracle runs every sketch against the exact oracle over
// a mixed workload of inserts, merges, serialization round-trips and
// resets, checking the documented accuracy property at every checkpoint.
// This is the repository's long-form invariant test: if any state
// transition corrupts a sketch, some later checkpoint catches it.
func TestSoakAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	type contender struct {
		mk func() quantiles.Sketch
		// check returns an error bound appropriate to the sketch's
		// guarantee for the given oracle and quantile.
		tolerance func(exact *stats.ExactQuantiles, q, est float64) float64
	}
	relTol := func(bound float64) func(*stats.ExactQuantiles, float64, float64) float64 {
		return func(exact *stats.ExactQuantiles, q, est float64) float64 {
			return stats.RelativeError(exact.Quantile(q), est) - bound
		}
	}
	rankTol := func(bound float64) func(*stats.ExactQuantiles, float64, float64) float64 {
		return func(exact *stats.ExactQuantiles, q, est float64) float64 {
			return stats.RankError(exact, q, est) - bound
		}
	}
	contenders := map[string]contender{
		"ddsketch": {
			mk:        func() quantiles.Sketch { return quantiles.NewDDSketch(0.01) },
			tolerance: relTol(0.0101),
		},
		"uddsketch": {
			mk: func() quantiles.Sketch {
				s, err := quantiles.NewUDDSketchWithBudget(0.01, 1024, 12)
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			tolerance: relTol(0.0101),
		},
		"kll": {
			mk:        func() quantiles.Sketch { return quantiles.NewKLLWithSeed(350, 11) },
			tolerance: rankTol(0.03),
		},
		"req": {
			mk:        func() quantiles.Sketch { return quantiles.NewReqSketchWithSeed(30, true, 12) },
			tolerance: rankTol(0.03),
		},
	}
	for name, c := range contenders {
		t.Run(name, func(t *testing.T) {
			main := c.mk()
			src := datagen.NewPareto(1.2, 1, 77)
			var all []float64
			phaseLen := 40000

			checkpoint := func(phase string) {
				exact := stats.NewExactQuantiles(all)
				for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
					est, err := main.Quantile(q)
					if err != nil {
						t.Fatalf("%s q=%v: %v", phase, q, err)
					}
					if over := c.tolerance(exact, q, est); over > 0 {
						t.Errorf("%s q=%v: bound exceeded by %v", phase, q, over)
					}
				}
				if main.Count() != uint64(len(all)) {
					t.Fatalf("%s: count %d, oracle %d", phase, main.Count(), len(all))
				}
			}

			// Phase 1: plain inserts.
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("insert")

			// Phase 2: merge a separately built partition in.
			part := c.mk()
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				part.Insert(x)
			}
			if err := main.Merge(part); err != nil {
				t.Fatal(err)
			}
			checkpoint("merge")

			// Phase 3: serialization round trip, then continue inserting
			// into the decoded sketch.
			blob, err := main.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decoded := c.mk()
			if err := decoded.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			main = decoded
			for i := 0; i < phaseLen; i++ {
				x := src.Next()
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("serde+insert")

			// Phase 4: reset and rebuild from scratch.
			main.Reset()
			all = all[:0]
			for i := 0; i < phaseLen; i++ {
				x := math.Abs(src.Next())
				all = append(all, x)
				main.Insert(x)
			}
			checkpoint("reset+rebuild")
		})
	}
}

// TestSoakCrashRecovery is the long-form fault-tolerance soak: one
// uninterrupted baseline run, then the same workload killed at a
// pseudo-random (worker, event) point over and over, each time
// recovering from the newest checkpoint. Every recovered run must
// reproduce the baseline exactly — the stream accounting identity
// intact, every window's collected values and serialized sketch
// bit-identical — no matter where the crash landed.
func TestSoakCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	mkCfg := func() stream.Config {
		return stream.Config{
			WindowSize:    time.Second,
			Rate:          4000,
			NumWindows:    5,
			Partitions:    4,
			Workers:       4,
			NewValues:     func() datagen.Source { return datagen.NewPareto(1.2, 1, 55) },
			NewDelay:      func() stream.DelayModel { return stream.NewExponentialDelay(120*time.Millisecond, 57) },
			Builder:       func() sketch.Sketch { return kll.NewWithSeed(128, 53) },
			CollectValues: true,
		}
	}
	eng, err := stream.NewEngine(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	baseline, baseStats, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Generated != baseStats.Accepted+baseStats.DroppedLate+baseStats.RejectedInput {
		t.Fatalf("baseline violates the accounting identity: %+v", baseStats)
	}
	baseBlobs := make([][]byte, len(baseline))
	for i, r := range baseline {
		if baseBlobs[i], err = r.Sketch.MarshalBinary(); err != nil {
			t.Fatal(err)
		}
	}

	// Each of the 4 workers owns one partition and inserts ~1/4 of the
	// accepted events, so a kill point inside [0, total/5) is guaranteed
	// to be reached by whichever worker it lands on.
	perWorker := int64(baseStats.Generated) / 5
	met := obs.NewRegistry().Engine()
	seedState := uint64(0x50a4beef)
	for iter := 0; iter < 10; iter++ {
		worker := int(datagen.SplitMix64(&seedState) % 4)
		event := int64(datagen.SplitMix64(&seedState) % uint64(perWorker))
		cfg := mkCfg()
		cfg.CheckpointStore = checkpoint.NewMemStore()
		cfg.CheckpointEvery = 1
		cfg.Faults = faultinject.New().WithPanic(worker, event)
		cfg.Metrics = met
		results, st, err := stream.RunRecovering(cfg)
		if err != nil {
			t.Fatalf("iter %d (kill worker %d at event %d): %v", iter, worker, event, err)
		}
		if st != baseStats {
			t.Fatalf("iter %d: stats diverged: got %+v want %+v", iter, st, baseStats)
		}
		if st.Generated != st.Accepted+st.DroppedLate+st.RejectedInput {
			t.Fatalf("iter %d: accounting identity broken: %+v", iter, st)
		}
		if len(results) != len(baseline) {
			t.Fatalf("iter %d: %d windows, want %d", iter, len(results), len(baseline))
		}
		for i, r := range results {
			b := baseline[i]
			if r.Index != b.Index || r.Accepted != b.Accepted || r.DroppedLate != b.DroppedLate {
				t.Fatalf("iter %d window %d: header diverged: got %+v want %+v", iter, i, r, b)
			}
			if len(r.Values) != len(b.Values) {
				t.Fatalf("iter %d window %d: %d values, want %d", iter, i, len(r.Values), len(b.Values))
			}
			for j := range r.Values {
				if math.Float64bits(r.Values[j]) != math.Float64bits(b.Values[j]) {
					t.Fatalf("iter %d window %d: value %d diverged", iter, i, j)
				}
			}
			blob, err := r.Sketch.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, baseBlobs[i]) {
				t.Fatalf("iter %d window %d: recovered sketch is not bit-identical to the baseline", iter, i)
			}
		}
	}
	if got := met.RecoveredPanics.Load(); got != 10 {
		t.Errorf("recovered %d panics over 10 kills, want 10 (some kill points never fired)", got)
	}
}
