package quantiles_test

import (
	"errors"
	"math"
	"sort"
	"testing"

	quantiles "repro"
	"repro/internal/datagen"
)

// constructors returns one instance of every public sketch type.
func constructors(t *testing.T) map[string]func() quantiles.Sketch {
	t.Helper()
	return map[string]func() quantiles.Sketch{
		"ddsketch": func() quantiles.Sketch { return quantiles.NewDDSketch(0.01) },
		"ddsketch-collapsing": func() quantiles.Sketch {
			return quantiles.NewDDSketchCollapsing(0.01, 1024)
		},
		"uddsketch": func() quantiles.Sketch {
			s, err := quantiles.NewUDDSketchWithBudget(0.01, 1024, 12)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"kll": func() quantiles.Sketch { return quantiles.NewKLLWithSeed(350, 7) },
		"req": func() quantiles.Sketch { return quantiles.NewReqSketchWithSeed(30, true, 7) },
		"moments": func() quantiles.Sketch {
			return quantiles.NewMomentsWithTransform(12, quantiles.MomentsLog)
		},
	}
}

// TestConformance exercises the full Sketch contract through the public
// API for every sketch type: empty behaviour, insert/query accuracy,
// merge count preservation, serialization round-trip, and reset.
func TestConformance(t *testing.T) {
	for name, make := range constructors(t) {
		t.Run(name, func(t *testing.T) {
			sk := make()

			// Empty sketch behaviour.
			if _, err := sk.Quantile(0.5); !errors.Is(err, quantiles.ErrEmpty) {
				t.Errorf("empty Quantile err = %v, want ErrEmpty", err)
			}
			if sk.Count() != 0 {
				t.Errorf("empty Count = %d", sk.Count())
			}

			// Invalid quantiles.
			sk.Insert(1)
			for _, q := range []float64{0, -1, 1.00001, math.NaN()} {
				if _, err := sk.Quantile(q); !errors.Is(err, quantiles.ErrInvalidQuantile) {
					t.Errorf("Quantile(%v) err = %v, want ErrInvalidQuantile", q, err)
				}
			}
			sk.Reset()

			// Accuracy on a lognormal stream.
			src := datagen.NewLogNormal(3, 1, 99)
			data := datagen.Take(src, 100_000)
			quantiles.InsertAll(sk, data)
			if sk.Count() != uint64(len(data)) {
				t.Fatalf("Count = %d, want %d", sk.Count(), len(data))
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
				est, err := sk.Quantile(q)
				if err != nil {
					t.Fatalf("q=%v: %v", q, err)
				}
				truth := sorted[int(math.Ceil(q*float64(len(sorted))))-1]
				if re := math.Abs(est-truth) / truth; re > 0.05 {
					t.Errorf("q=%v: rel err %v (est=%v truth=%v)", q, re, est, truth)
				}
			}

			// Rank is consistent with Quantile.
			med, _ := sk.Quantile(0.5)
			r, err := sk.Rank(med)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r-0.5) > 0.05 {
				t.Errorf("Rank(median) = %v", r)
			}

			// Merge preserves counts and incompatible types are rejected.
			other := make()
			quantiles.InsertAll(other, data[:1000])
			if err := sk.Merge(other); err != nil {
				t.Fatalf("merge: %v", err)
			}
			if sk.Count() != uint64(len(data)+1000) {
				t.Errorf("merged Count = %d", sk.Count())
			}
			foreign := quantiles.NewKLL(10)
			if name != "kll" {
				if err := sk.Merge(foreign); !errors.Is(err, quantiles.ErrIncompatible) {
					t.Errorf("cross-type merge err = %v, want ErrIncompatible", err)
				}
			}

			// Serialization round-trip preserves answers.
			blob, err := sk.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			dst := make()
			if err := dst.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			for _, q := range []float64{0.25, 0.75} {
				a, _ := sk.Quantile(q)
				b, _ := dst.Quantile(q)
				if a != b {
					t.Errorf("q=%v differs after round trip: %v vs %v", q, a, b)
				}
			}
			if err := dst.UnmarshalBinary([]byte{0xde, 0xad}); !errors.Is(err, quantiles.ErrCorrupt) {
				t.Errorf("corrupt decode err = %v, want ErrCorrupt", err)
			}

			// Reset restores the empty state.
			sk.Reset()
			if sk.Count() != 0 {
				t.Errorf("Count after Reset = %d", sk.Count())
			}
			if _, err := sk.Quantile(0.5); !errors.Is(err, quantiles.ErrEmpty) {
				t.Errorf("Quantile after Reset err = %v", err)
			}

			// MemoryBytes is positive and small.
			quantiles.InsertAll(sk, data[:10_000])
			if m := sk.MemoryBytes(); m <= 0 || m > 1<<20 {
				t.Errorf("MemoryBytes = %d", m)
			}
		})
	}
}

func TestQuantilesHelper(t *testing.T) {
	sk := quantiles.NewDDSketch(0.01)
	for i := 1; i <= 1000; i++ {
		sk.Insert(float64(i))
	}
	got, err := quantiles.Quantiles(sk, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 500, 900}
	for i := range want {
		if re := math.Abs(got[i]-want[i]) / want[i]; re > 0.01 {
			t.Errorf("q[%d] = %v, want ≈ %v", i, got[i], want[i])
		}
	}
	if _, err := quantiles.Quantiles(sk, []float64{0.5, -1}); err == nil {
		t.Error("invalid quantile in set should fail")
	}
}
